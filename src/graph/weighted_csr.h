// Weighted symmetric CSR graph. Satisfies GraphView (so every algorithm in
// the repo runs on it), and additionally exposes edge weights, weighted
// degrees, and weight-proportional neighbor sampling — the quantities the
// paper's formulas use for general A_uv (downsampling probability
// p_e = min(1, C A_uv (1/d_u + 1/d_v)), weighted random walks, the NetMF
// matrix with vol(G) = sum of weights).
#ifndef LIGHTNE_GRAPH_WEIGHTED_CSR_H_
#define LIGHTNE_GRAPH_WEIGHTED_CSR_H_

#include <span>
#include <tuple>
#include <vector>

#include "graph/types.h"
#include "parallel/parallel_for.h"
#include "util/check.h"
#include "util/random.h"

namespace lightne {

/// Staging format for weighted graphs.
struct WeightedEdgeList {
  NodeId num_vertices = 0;
  std::vector<std::tuple<NodeId, NodeId, float>> edges;

  void Add(NodeId u, NodeId v, float w) { edges.emplace_back(u, v, w); }
};

class WeightedCsrGraph {
 public:
  WeightedCsrGraph() = default;

  /// Symmetrizes, drops self loops, and sums the weights of duplicate
  /// edges. Weights must be positive.
  static WeightedCsrGraph FromEdges(WeightedEdgeList list);

  // --- GraphView interface -------------------------------------------------
  NodeId NumVertices() const { return num_vertices_; }
  EdgeId NumDirectedEdges() const { return neighbors_.size(); }
  EdgeId NumUndirectedEdges() const { return neighbors_.size() / 2; }
  /// vol(G) = sum of weighted degrees = total stored weight.
  double Volume() const { return total_weight_; }
  uint64_t Degree(NodeId v) const { return offsets_[v + 1] - offsets_[v]; }
  NodeId Neighbor(NodeId v, uint64_t i) const {
    return neighbors_[offsets_[v] + i];
  }
  template <typename F>
  void MapNeighbors(NodeId v, F&& fn) const {
    for (uint64_t k = offsets_[v]; k < offsets_[v + 1]; ++k) {
      fn(neighbors_[k]);
    }
  }
  template <typename F>
  void MapEdges(F&& fn) const {
    ParallelFor(
        0, num_vertices_,
        [&](uint64_t u) {
          MapNeighbors(static_cast<NodeId>(u),
                       [&](NodeId v) { fn(static_cast<NodeId>(u), v); });
        },
        /*grain=*/64);
  }
  template <typename F>
  void MapVertices(F&& fn) const {
    ParallelFor(0, num_vertices_,
                [&](uint64_t v) { fn(static_cast<NodeId>(v)); });
  }

  // --- weighted extensions -------------------------------------------------
  float Weight(NodeId v, uint64_t i) const {
    return weights_[offsets_[v] + i];
  }

  /// d_v = sum_u A_vu (cached at construction).
  double WeightedDegree(NodeId v) const { return weighted_degree_[v]; }

  /// Applies fn(neighbor, weight) over v's adjacency.
  template <typename F>
  void MapNeighborsWeighted(NodeId v, F&& fn) const {
    for (uint64_t k = offsets_[v]; k < offsets_[v + 1]; ++k) {
      fn(neighbors_[k], weights_[k]);
    }
  }

  /// Samples a neighbor with probability proportional to its edge weight.
  /// O(1) via the alias table when BuildAliasTable() has run, degree-gated
  /// (alias on hubs, inverse CDF below the gate) after
  /// BuildDegreeGatedAlias(), otherwise a binary search over the per-vertex
  /// cumulative weights (O(log degree)). All paths consume exactly one
  /// rng.Uniform() per draw, so code that replays a seeded RNG stream sees
  /// the same consumption any way (the drawn neighbors differ between
  /// methods for the same roll — only the distribution and the RNG cursor
  /// are contractual).
  NodeId SampleNeighbor(NodeId v, Rng& rng) const {
    if (!sample_slot_.empty()) return SampleNeighborGated(v, rng);
    if (!alias_prob_.empty()) return SampleNeighborAlias(v, rng);
    return SampleNeighborPrefixScan(v, rng);
  }

  /// The O(log degree) reference sampler (inverse CDF over the cumulative
  /// weights). Kept callable directly so tests and benches can compare the
  /// alias path against it. Unavailable after BuildDegreeGatedAlias (the
  /// full cumulative array is released — that is the memory win).
  NodeId SampleNeighborPrefixScan(NodeId v, Rng& rng) const {
    const uint64_t lo = offsets_[v], hi = offsets_[v + 1];
    LIGHTNE_CHECK_GT(hi, lo);
    LIGHTNE_CHECK_MSG(!cumulative_.empty(),
                      "cumulative weights were released by "
                      "BuildDegreeGatedAlias; use SampleNeighbor");
    const double roll = rng.Uniform() * (cumulative_[hi - 1]);
    // First index with cumulative >= roll.
    uint64_t a = lo, b = hi - 1;
    while (a < b) {
      const uint64_t mid = (a + b) / 2;
      if (cumulative_[mid] < roll) {
        a = mid + 1;
      } else {
        b = mid;
      }
    }
    return neighbors_[a];
  }

  /// O(1) weighted draw via the Walker/Vose alias table. Requires
  /// BuildAliasTable(). A single Uniform() supplies both the column index
  /// (integer part of u * d) and the accept/alias coin (fractional part) —
  /// the standard one-draw alias trick, which is what keeps the RNG
  /// consumption identical to the prefix-scan path.
  NodeId SampleNeighborAlias(NodeId v, Rng& rng) const {
    const uint64_t lo = offsets_[v], d = offsets_[v + 1] - offsets_[v];
    LIGHTNE_CHECK_GT(d, 0u);
    LIGHTNE_CHECK_MSG(!alias_prob_.empty(), "BuildAliasTable has not run");
    const double x = rng.Uniform() * static_cast<double>(d);
    uint64_t i = static_cast<uint64_t>(x);
    if (i >= d) i = d - 1;  // guard the u ~ 1.0 rounding edge
    const double frac = x - static_cast<double>(i);
    const uint64_t k = lo + i;
    return frac < alias_prob_[k] ? neighbors_[k]
                                 : neighbors_[lo + alias_idx_[k]];
  }

  /// Degree-gated draw (BuildDegreeGatedAlias): hub vertices use a Vose
  /// alias row, everything below the gate a local inverse-CDF search. The
  /// rows are built with the exact arithmetic of BuildAliasTable /
  /// FromEdges' cumulative pass, so a gated draw returns bit-identically
  /// what SampleNeighborAlias (hub) or SampleNeighborPrefixScan (cold)
  /// would have returned for the same roll.
  NodeId SampleNeighborGated(NodeId v, Rng& rng) const {
    const uint64_t lo = offsets_[v], d = offsets_[v + 1] - lo;
    LIGHTNE_CHECK_GT(d, 0u);
    const uint64_t slot = sample_slot_[v];
    const uint64_t base = slot & kSlotMask;
    if ((slot & kAliasBit) != 0) {
      // Both the alias branch and the inverse-CDF fallthrough below consume
      // exactly one Uniform, so the RNG cursor advances identically on
      // either path.
      const double x = rng.Uniform() * static_cast<double>(d);  // lint-ok: rngflow (both paths draw once)
      uint64_t i = static_cast<uint64_t>(x);
      if (i >= d) i = d - 1;  // guard the u ~ 1.0 rounding edge
      const double frac = x - static_cast<double>(i);
      const uint64_t k = base + i;
      return frac < gated_alias_prob_[k]
                 ? neighbors_[lo + i]
                 : neighbors_[lo + gated_alias_idx_[k]];
    }
    const double roll = rng.Uniform() * gated_cumulative_[base + d - 1];
    // First index with cumulative >= roll.
    uint64_t a = 0, b = d - 1;
    while (a < b) {
      const uint64_t mid = (a + b) / 2;
      if (gated_cumulative_[base + mid] < roll) {
        a = mid + 1;
      } else {
        b = mid;
      }
    }
    return neighbors_[lo + a];
  }

  /// Precomputes the Walker/Vose alias table (parallel over vertices,
  /// O(degree) work and 12 extra bytes per directed edge). Idempotent.
  /// Mutually exclusive with BuildDegreeGatedAlias.
  void BuildAliasTable();

  /// Degree-gated sampling structures: Vose alias rows (12 bytes/edge) only
  /// for vertices of degree >= `degree_gate`, compact per-vertex cumulative
  /// rows (8 bytes/edge) below it — then releases the full cumulative
  /// array, cutting sampling memory from 20 bytes/edge to 8 + 4f (f = the
  /// hub-edge fraction) while hub draws, which dominate weight-proportional
  /// walks, keep the O(1) alias path. Idempotent; mutually exclusive with
  /// BuildAliasTable (building both would defeat the point).
  void BuildDegreeGatedAlias(uint32_t degree_gate);

  bool has_alias_table() const { return !alias_prob_.empty(); }
  bool degree_gated() const { return !sample_slot_.empty(); }
  /// The gate passed to BuildDegreeGatedAlias (0 before it runs).
  uint32_t degree_gate() const { return degree_gate_; }

  /// Bytes held by weight-proportional sampling structures alone (cumulative
  /// rows, alias rows, and the gated slot index) — the quantity the gated
  /// build cuts; graph topology (offsets/neighbors/weights) excluded.
  uint64_t SamplingBytes() const {
    return cumulative_.size() * sizeof(double) +
           alias_prob_.size() * sizeof(double) +
           alias_idx_.size() * sizeof(NodeId) +
           sample_slot_.size() * sizeof(uint64_t) +
           gated_cumulative_.size() * sizeof(double) +
           gated_alias_prob_.size() * sizeof(double) +
           gated_alias_idx_.size() * sizeof(NodeId);
  }

  uint64_t SizeBytes() const {
    return offsets_.size() * sizeof(uint64_t) +
           neighbors_.size() * sizeof(NodeId) +
           weights_.size() * sizeof(float) +
           weighted_degree_.size() * sizeof(double) + SamplingBytes();
  }

 private:
  // sample_slot_ tags: high bit picks the row kind, low bits the row base.
  static constexpr uint64_t kAliasBit = uint64_t{1} << 63;
  static constexpr uint64_t kSlotMask = kAliasBit - 1;

  /// Builds one Vose alias row for the `d` weights starting at edge slot
  /// `lo` into prob/idx (each `d` entries). Shared by the full and gated
  /// builders so both produce bit-identical rows.
  void BuildAliasRow(uint64_t lo, uint64_t d, double total, double* prob,
                     NodeId* idx) const;

  NodeId num_vertices_ = 0;
  double total_weight_ = 0;
  uint32_t degree_gate_ = 0;
  std::vector<uint64_t> offsets_;
  std::vector<NodeId> neighbors_;
  std::vector<float> weights_;
  std::vector<double> cumulative_;       // per-vertex running weight sums
  std::vector<double> weighted_degree_;  // per vertex
  // Alias table (empty until BuildAliasTable): per edge slot k, accept
  // probability of the resident column and the in-adjacency index drawn on
  // rejection.
  std::vector<double> alias_prob_;
  std::vector<NodeId> alias_idx_;
  // Degree-gated structures (empty until BuildDegreeGatedAlias): per-vertex
  // tagged base into the packed alias rows (hubs) or cumulative rows (cold).
  std::vector<uint64_t> sample_slot_;
  std::vector<double> gated_cumulative_;
  std::vector<double> gated_alias_prob_;
  std::vector<NodeId> gated_alias_idx_;
};

}  // namespace lightne

#endif  // LIGHTNE_GRAPH_WEIGHTED_CSR_H_
