// Weighted symmetric CSR graph. Satisfies GraphView (so every algorithm in
// the repo runs on it), and additionally exposes edge weights, weighted
// degrees, and weight-proportional neighbor sampling — the quantities the
// paper's formulas use for general A_uv (downsampling probability
// p_e = min(1, C A_uv (1/d_u + 1/d_v)), weighted random walks, the NetMF
// matrix with vol(G) = sum of weights).
#ifndef LIGHTNE_GRAPH_WEIGHTED_CSR_H_
#define LIGHTNE_GRAPH_WEIGHTED_CSR_H_

#include <span>
#include <tuple>
#include <vector>

#include "graph/types.h"
#include "parallel/parallel_for.h"
#include "util/check.h"
#include "util/random.h"

namespace lightne {

/// Staging format for weighted graphs.
struct WeightedEdgeList {
  NodeId num_vertices = 0;
  std::vector<std::tuple<NodeId, NodeId, float>> edges;

  void Add(NodeId u, NodeId v, float w) { edges.emplace_back(u, v, w); }
};

class WeightedCsrGraph {
 public:
  WeightedCsrGraph() = default;

  /// Symmetrizes, drops self loops, and sums the weights of duplicate
  /// edges. Weights must be positive.
  static WeightedCsrGraph FromEdges(WeightedEdgeList list);

  // --- GraphView interface -------------------------------------------------
  NodeId NumVertices() const { return num_vertices_; }
  EdgeId NumDirectedEdges() const { return neighbors_.size(); }
  EdgeId NumUndirectedEdges() const { return neighbors_.size() / 2; }
  /// vol(G) = sum of weighted degrees = total stored weight.
  double Volume() const { return total_weight_; }
  uint64_t Degree(NodeId v) const { return offsets_[v + 1] - offsets_[v]; }
  NodeId Neighbor(NodeId v, uint64_t i) const {
    return neighbors_[offsets_[v] + i];
  }
  template <typename F>
  void MapNeighbors(NodeId v, F&& fn) const {
    for (uint64_t k = offsets_[v]; k < offsets_[v + 1]; ++k) {
      fn(neighbors_[k]);
    }
  }
  template <typename F>
  void MapEdges(F&& fn) const {
    ParallelFor(
        0, num_vertices_,
        [&](uint64_t u) {
          MapNeighbors(static_cast<NodeId>(u),
                       [&](NodeId v) { fn(static_cast<NodeId>(u), v); });
        },
        /*grain=*/64);
  }
  template <typename F>
  void MapVertices(F&& fn) const {
    ParallelFor(0, num_vertices_,
                [&](uint64_t v) { fn(static_cast<NodeId>(v)); });
  }

  // --- weighted extensions -------------------------------------------------
  float Weight(NodeId v, uint64_t i) const {
    return weights_[offsets_[v] + i];
  }

  /// d_v = sum_u A_vu (cached at construction).
  double WeightedDegree(NodeId v) const { return weighted_degree_[v]; }

  /// Applies fn(neighbor, weight) over v's adjacency.
  template <typename F>
  void MapNeighborsWeighted(NodeId v, F&& fn) const {
    for (uint64_t k = offsets_[v]; k < offsets_[v + 1]; ++k) {
      fn(neighbors_[k], weights_[k]);
    }
  }

  /// Samples a neighbor with probability proportional to its edge weight.
  /// O(1) via the alias table when BuildAliasTable() has run, otherwise a
  /// binary search over the per-vertex cumulative weights (O(log degree)).
  /// Both paths consume exactly one rng.Uniform() per draw, so code that
  /// replays a seeded RNG stream sees the same consumption either way (the
  /// drawn neighbors differ between methods for the same roll — only the
  /// distribution and the RNG cursor are contractual).
  NodeId SampleNeighbor(NodeId v, Rng& rng) const {
    if (!alias_prob_.empty()) return SampleNeighborAlias(v, rng);
    return SampleNeighborPrefixScan(v, rng);
  }

  /// The O(log degree) reference sampler (inverse CDF over the cumulative
  /// weights). Kept callable directly so tests and benches can compare the
  /// alias path against it.
  NodeId SampleNeighborPrefixScan(NodeId v, Rng& rng) const {
    const uint64_t lo = offsets_[v], hi = offsets_[v + 1];
    LIGHTNE_CHECK_GT(hi, lo);
    const double roll = rng.Uniform() * (cumulative_[hi - 1]);
    // First index with cumulative >= roll.
    uint64_t a = lo, b = hi - 1;
    while (a < b) {
      const uint64_t mid = (a + b) / 2;
      if (cumulative_[mid] < roll) {
        a = mid + 1;
      } else {
        b = mid;
      }
    }
    return neighbors_[a];
  }

  /// O(1) weighted draw via the Walker/Vose alias table. Requires
  /// BuildAliasTable(). A single Uniform() supplies both the column index
  /// (integer part of u * d) and the accept/alias coin (fractional part) —
  /// the standard one-draw alias trick, which is what keeps the RNG
  /// consumption identical to the prefix-scan path.
  NodeId SampleNeighborAlias(NodeId v, Rng& rng) const {
    const uint64_t lo = offsets_[v], d = offsets_[v + 1] - offsets_[v];
    LIGHTNE_CHECK_GT(d, 0u);
    const double x = rng.Uniform() * static_cast<double>(d);
    uint64_t i = static_cast<uint64_t>(x);
    if (i >= d) i = d - 1;  // guard the u ~ 1.0 rounding edge
    const double frac = x - static_cast<double>(i);
    const uint64_t k = lo + i;
    return frac < alias_prob_[k] ? neighbors_[k]
                                 : neighbors_[lo + alias_idx_[k]];
  }

  /// Precomputes the Walker/Vose alias table (parallel over vertices,
  /// O(degree) work and 12 extra bytes per directed edge). Idempotent.
  void BuildAliasTable();

  bool has_alias_table() const { return !alias_prob_.empty(); }

  uint64_t SizeBytes() const {
    return offsets_.size() * sizeof(uint64_t) +
           neighbors_.size() * sizeof(NodeId) +
           weights_.size() * sizeof(float) +
           cumulative_.size() * sizeof(double) +
           weighted_degree_.size() * sizeof(double) +
           alias_prob_.size() * sizeof(double) +
           alias_idx_.size() * sizeof(NodeId);
  }

 private:
  NodeId num_vertices_ = 0;
  double total_weight_ = 0;
  std::vector<uint64_t> offsets_;
  std::vector<NodeId> neighbors_;
  std::vector<float> weights_;
  std::vector<double> cumulative_;       // per-vertex running weight sums
  std::vector<double> weighted_degree_;  // per vertex
  // Alias table (empty until BuildAliasTable): per edge slot k, accept
  // probability of the resident column and the in-adjacency index drawn on
  // rejection.
  std::vector<double> alias_prob_;
  std::vector<NodeId> alias_idx_;
};

}  // namespace lightne

#endif  // LIGHTNE_GRAPH_WEIGHTED_CSR_H_
