#include "graph/io.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace lightne {

namespace {
constexpr uint64_t kBinaryMagic = 0x4c4e4547524e31ull;  // "LNEGRN1"
}  // namespace

Result<EdgeList> LoadEdgeListText(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  EdgeList list;
  char line[512];
  NodeId max_id = 0;
  bool declared_nodes = false;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (line[0] == '#' || line[0] == '%') {
      unsigned long long n = 0;
      if (std::sscanf(line, "# nodes: %llu", &n) == 1 ||
          std::sscanf(line, "# Nodes: %llu", &n) == 1) {
        list.num_vertices = static_cast<NodeId>(n);
        declared_nodes = true;
      }
      continue;
    }
    unsigned long long u = 0, v = 0;
    if (std::sscanf(line, "%llu %llu", &u, &v) != 2) continue;
    if (u > 0xffffffffull || v > 0xffffffffull) {
      std::fclose(f);
      return Status::OutOfRange("vertex id exceeds 32 bits in " + path);
    }
    list.Add(static_cast<NodeId>(u), static_cast<NodeId>(v));
    if (u > max_id) max_id = static_cast<NodeId>(u);
    if (v > max_id) max_id = static_cast<NodeId>(v);
  }
  std::fclose(f);
  if (!declared_nodes) {
    list.num_vertices = list.edges.empty() ? 0 : max_id + 1;
  }
  return list;
}

Status SaveEdgeListText(const EdgeList& list, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::fprintf(f, "# nodes: %" PRIu64 "\n",
               static_cast<uint64_t>(list.num_vertices));
  for (const auto& [u, v] : list.edges) {
    std::fprintf(f, "%u %u\n", u, v);
  }
  std::fclose(f);
  return Status::Ok();
}

Result<EdgeList> LoadEdgeListBinary(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  uint64_t header[3];
  if (std::fread(header, sizeof(uint64_t), 3, f) != 3 ||
      header[0] != kBinaryMagic) {
    std::fclose(f);
    return Status::IOError("bad header in " + path);
  }
  EdgeList list;
  list.num_vertices = static_cast<NodeId>(header[1]);
  const uint64_t m = header[2];
  list.edges.resize(m);
  static_assert(sizeof(list.edges[0]) == 8);
  if (m > 0 && std::fread(list.edges.data(), 8, m, f) != m) {
    std::fclose(f);
    return Status::IOError("truncated edge data in " + path);
  }
  std::fclose(f);
  return list;
}

Result<WeightedEdgeList> LoadWeightedEdgeListText(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  WeightedEdgeList list;
  char line[512];
  NodeId max_id = 0;
  bool declared_nodes = false;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (line[0] == '#' || line[0] == '%') {
      unsigned long long n = 0;
      if (std::sscanf(line, "# nodes: %llu", &n) == 1) {
        list.num_vertices = static_cast<NodeId>(n);
        declared_nodes = true;
      }
      continue;
    }
    unsigned long long u = 0, v = 0;
    float w = 1.0f;
    const int fields = std::sscanf(line, "%llu %llu %f", &u, &v, &w);
    if (fields < 2) continue;
    if (fields == 2) w = 1.0f;
    if (u > 0xffffffffull || v > 0xffffffffull) {
      std::fclose(f);
      return Status::OutOfRange("vertex id exceeds 32 bits in " + path);
    }
    if (w <= 0) {
      std::fclose(f);
      return Status::InvalidArgument("non-positive edge weight in " + path);
    }
    list.Add(static_cast<NodeId>(u), static_cast<NodeId>(v), w);
    if (u > max_id) max_id = static_cast<NodeId>(u);
    if (v > max_id) max_id = static_cast<NodeId>(v);
  }
  std::fclose(f);
  if (!declared_nodes) {
    list.num_vertices = list.edges.empty() ? 0 : max_id + 1;
  }
  return list;
}

Status SaveWeightedEdgeListText(const WeightedEdgeList& list,
                                const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::fprintf(f, "# nodes: %" PRIu64 "\n",
               static_cast<uint64_t>(list.num_vertices));
  for (const auto& [u, v, w] : list.edges) {
    std::fprintf(f, "%u %u %.6g\n", u, v, w);
  }
  std::fclose(f);
  return Status::Ok();
}

Status SaveEdgeListBinary(const EdgeList& list, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const uint64_t header[3] = {kBinaryMagic, list.num_vertices,
                              list.edges.size()};
  bool ok = std::fwrite(header, sizeof(uint64_t), 3, f) == 3;
  if (ok && !list.edges.empty()) {
    ok = std::fwrite(list.edges.data(), 8, list.edges.size(), f) ==
         list.edges.size();
  }
  std::fclose(f);
  return ok ? Status::Ok() : Status::IOError("short write to " + path);
}

}  // namespace lightne
