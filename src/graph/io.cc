#include "graph/io.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "util/artifact_io.h"
#include "util/fault_injection.h"

namespace lightne {

namespace {
constexpr uint64_t kBinaryMagic = 0x4c4e4547524e31ull;  // "LNEGRN1"

std::string LineError(const std::string& path, uint64_t line_no,
                      const char* what) {
  return path + ":" + std::to_string(line_no) + ": " + what;
}

/// Parses a base-10 unsigned integer at *p (first char must be a digit —
/// strtoull's tolerance for signs/whitespace is not wanted here) and
/// advances *p past it. Overflow saturates to ULLONG_MAX, which the callers
/// reject as out-of-range.
bool ParseUint(const char** p, uint64_t* out) {
  const char* s = *p;
  if (*s < '0' || *s > '9') return false;
  char* end = nullptr;
  *out = std::strtoull(s, &end, 10);
  *p = end;
  return true;
}

/// Requires and consumes at least one space/tab at *p.
bool SkipFieldSeparator(const char** p) {
  const char* s = *p;
  if (*s != ' ' && *s != '\t') return false;
  while (*s == ' ' || *s == '\t') ++s;
  *p = s;
  return true;
}

void SkipSpace(const char** p) {
  while (**p == ' ' || **p == '\t') ++(*p);
}

/// Parses a float at *p and advances past it. Rejects empty matches.
bool ParseFloat(const char** p, float* out) {
  char* end = nullptr;
  *out = std::strtof(*p, &end);
  if (end == *p) return false;
  *p = end;
  return true;
}

/// Prepares one fgets buffer for parsing: verifies the line fit the buffer,
/// strips the trailing "\n" / "\r\n", and skips leading blanks. Returns
/// false with *error set if the line was longer than the buffer.
bool PrepareLine(char* line, size_t cap, std::FILE* f, const std::string& path,
                 uint64_t line_no, const char** first, Status* error) {
  size_t len = std::strlen(line);
  if (len + 1 == cap && line[len - 1] != '\n' && !std::feof(f)) {
    *error = Status::InvalidArgument(
        LineError(path, line_no, "line longer than 4095 bytes"));
    return false;
  }
  while (len > 0 && (line[len - 1] == '\n' || line[len - 1] == '\r')) {
    line[--len] = '\0';
  }
  const char* p = line;
  SkipSpace(&p);
  *first = p;
  return true;
}

/// Shared loader core; `weighted` selects the third-column handling. Both
/// loaders tolerate an optional numeric weight column so weighted files can
/// be read as unweighted graphs; only the weighted loader validates it.
template <typename List, typename AddEdge>
Result<List> LoadEdgeListTextImpl(const std::string& path, bool weighted,
                                  const AddEdge& add_edge) {
  if (LIGHTNE_FAULT_POINT("io/read")) {
    return Status::IOError("injected fault io/read while reading " + path);
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  List list;
  char line[4096];
  uint64_t line_no = 0;
  NodeId max_id = 0;
  bool declared_nodes = false;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++line_no;
    const char* p = nullptr;
    Status line_error = Status::Ok();
    if (!PrepareLine(line, sizeof(line), f, path, line_no, &p, &line_error)) {
      std::fclose(f);
      return line_error;
    }
    if (*p == '\0') continue;  // blank line (covers CRLF-only lines)
    if (*p == '#' || *p == '%') {
      unsigned long long n = 0;
      if (std::sscanf(p, "# nodes: %llu", &n) == 1 ||
          std::sscanf(p, "# Nodes: %llu", &n) == 1) {
        list.num_vertices = static_cast<NodeId>(n);
        declared_nodes = true;
      }
      continue;
    }
    uint64_t u = 0, v = 0;
    if (!ParseUint(&p, &u) || !SkipFieldSeparator(&p) || !ParseUint(&p, &v)) {
      std::fclose(f);
      return Status::InvalidArgument(LineError(
          path, line_no, weighted ? "expected \"u v [w]\" with numeric ids"
                                  : "expected \"u v\" with numeric ids"));
    }
    float w = 1.0f;
    SkipSpace(&p);
    if (*p != '\0') {  // optional weight column
      if (!ParseFloat(&p, &w)) {
        std::fclose(f);
        return Status::InvalidArgument(
            LineError(path, line_no, "garbage after edge endpoints"));
      }
      SkipSpace(&p);
      if (*p != '\0') {
        std::fclose(f);
        return Status::InvalidArgument(
            LineError(path, line_no, "trailing garbage after edge fields"));
      }
    }
    if (u > 0xffffffffull || v > 0xffffffffull) {
      std::fclose(f);
      return Status::OutOfRange(
          LineError(path, line_no, "vertex id exceeds 32 bits"));
    }
    if (weighted && !(w > 0.0f)) {
      std::fclose(f);
      return Status::InvalidArgument(
          LineError(path, line_no, "non-positive edge weight"));
    }
    add_edge(&list, static_cast<NodeId>(u), static_cast<NodeId>(v), w);
    if (u > max_id) max_id = static_cast<NodeId>(u);
    if (v > max_id) max_id = static_cast<NodeId>(v);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) return Status::IOError("read error in " + path);
  if (!declared_nodes) {
    list.num_vertices = list.edges.empty() ? 0 : max_id + 1;
  }
  return list;
}

Status SaveEdgeListTextOnce(const EdgeList& list, const std::string& path) {
  // All savers write through AtomicFileWriter: bytes land in `<path>.tmp`
  // and only an all-or-nothing Commit() renames onto `path`, so neither a
  // write failure nor a crash mid-save can leave a partial file behind.
  AtomicFileWriter writer;
  LIGHTNE_RETURN_IF_ERROR(writer.Open(path));
  std::FILE* f = writer.stream();
  std::fprintf(f, "# nodes: %" PRIu64 "\n",
               static_cast<uint64_t>(list.num_vertices));
  if (LIGHTNE_FAULT_POINT("io/write")) {
    return Status::IOError("injected fault io/write while writing " + path);
  }
  for (const auto& [u, v] : list.edges) {
    if (std::fprintf(f, "%u %u\n", u, v) < 0) {
      return Status::IOError("short write to " + path);
    }
  }
  return writer.Commit();
}

Status SaveWeightedEdgeListTextOnce(const WeightedEdgeList& list,
                                    const std::string& path) {
  AtomicFileWriter writer;
  LIGHTNE_RETURN_IF_ERROR(writer.Open(path));
  std::FILE* f = writer.stream();
  std::fprintf(f, "# nodes: %" PRIu64 "\n",
               static_cast<uint64_t>(list.num_vertices));
  if (LIGHTNE_FAULT_POINT("io/write")) {
    return Status::IOError("injected fault io/write while writing " + path);
  }
  for (const auto& [u, v, w] : list.edges) {
    if (std::fprintf(f, "%u %u %.6g\n", u, v, w) < 0) {
      return Status::IOError("short write to " + path);
    }
  }
  return writer.Commit();
}

Result<EdgeList> LoadEdgeListBinaryOnce(const std::string& path) {
  if (LIGHTNE_FAULT_POINT("io/read")) {
    return Status::IOError("injected fault io/read while reading " + path);
  }
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  uint64_t header[3];
  if (std::fread(header, sizeof(uint64_t), 3, f) != 3 ||
      header[0] != kBinaryMagic) {
    std::fclose(f);
    return Status::IOError("bad header in " + path);
  }
  EdgeList list;
  list.num_vertices = static_cast<NodeId>(header[1]);
  const uint64_t m = header[2];
  list.edges.resize(m);
  static_assert(sizeof(list.edges[0]) == 8);
  if (m > 0 && std::fread(list.edges.data(), 8, m, f) != m) {
    std::fclose(f);
    return Status::IOError("truncated edge data in " + path);
  }
  std::fclose(f);
  return list;
}

Status SaveEdgeListBinaryOnce(const EdgeList& list, const std::string& path) {
  AtomicFileWriter writer;
  LIGHTNE_RETURN_IF_ERROR(writer.Open(path));
  std::FILE* f = writer.stream();
  const uint64_t header[3] = {kBinaryMagic, list.num_vertices,
                              list.edges.size()};
  bool ok = std::fwrite(header, sizeof(uint64_t), 3, f) == 3;
  if (ok && LIGHTNE_FAULT_POINT("io/write")) ok = false;
  if (ok && !list.edges.empty()) {
    ok = std::fwrite(list.edges.data(), 8, list.edges.size(), f) ==
         list.edges.size();
  }
  if (!ok) return Status::IOError("short write to " + path);
  return writer.Commit();
}

}  // namespace

Result<EdgeList> LoadEdgeListText(const std::string& path,
                                  const RetryOptions& retry) {
  return RetryResultWithBackoff<EdgeList>(
      [&] {
        return LoadEdgeListTextImpl<EdgeList>(
            path, /*weighted=*/false,
            [](EdgeList* list, NodeId u, NodeId v, float) {
              list->Add(u, v);
            });
      },
      retry);
}

Status SaveEdgeListText(const EdgeList& list, const std::string& path,
                        const RetryOptions& retry) {
  return RetryWithBackoff([&] { return SaveEdgeListTextOnce(list, path); },
                          retry);
}

Result<EdgeList> LoadEdgeListBinary(const std::string& path,
                                    const RetryOptions& retry) {
  return RetryResultWithBackoff<EdgeList>(
      [&] { return LoadEdgeListBinaryOnce(path); }, retry);
}

Status SaveEdgeListBinary(const EdgeList& list, const std::string& path,
                          const RetryOptions& retry) {
  return RetryWithBackoff([&] { return SaveEdgeListBinaryOnce(list, path); },
                          retry);
}

Result<WeightedEdgeList> LoadWeightedEdgeListText(const std::string& path,
                                                  const RetryOptions& retry) {
  return RetryResultWithBackoff<WeightedEdgeList>(
      [&] {
        return LoadEdgeListTextImpl<WeightedEdgeList>(
            path, /*weighted=*/true,
            [](WeightedEdgeList* list, NodeId u, NodeId v, float w) {
              list->Add(u, v, w);
            });
      },
      retry);
}

Status SaveWeightedEdgeListText(const WeightedEdgeList& list,
                                const std::string& path,
                                const RetryOptions& retry) {
  return RetryWithBackoff(
      [&] { return SaveWeightedEdgeListTextOnce(list, path); }, retry);
}

}  // namespace lightne
