// Ligra's EdgeMap with direction optimization (Shun & Blelloch, PPoPP'13),
// generic over raw-CSR and compressed graphs — the traversal primitive of
// the parallel graph-processing substrate.
//
// EdgeMap(g, frontier, update, cond) applies update(u, v) over edges (u, v)
// with u in the frontier and cond(v) true, and returns the subset of targets
// for which update returned true. When the frontier (plus its out-degrees)
// is large, traversal switches from sparse push to dense pull, where each
// candidate target scans its in-neighbors and stops at the first hit
// (update_once semantics). `update` must be safe under concurrent invocation
// (use CAS, as in BFS parent-setting).
#ifndef LIGHTNE_GRAPH_EDGE_MAP_H_
#define LIGHTNE_GRAPH_EDGE_MAP_H_

#include <atomic>
#include <memory>

#include "graph/graph_view.h"
#include "graph/vertex_subset.h"

namespace lightne {

struct EdgeMapOptions {
  /// Switch to dense traversal when frontier size + frontier out-degrees
  /// exceeds directed-edge-count / denominator (Ligra's default is 20).
  uint64_t dense_denominator = 20;
  /// Force one direction (for testing): 0 auto, 1 sparse, 2 dense.
  int force_direction = 0;
};

template <GraphView G, typename Update, typename Cond>
VertexSubset EdgeMap(const G& g, VertexSubset& frontier, Update&& update,
                     Cond&& cond, const EdgeMapOptions& opt = {}) {
  const NodeId n = g.NumVertices();
  LIGHTNE_CHECK_EQ(frontier.universe(), n);

  bool dense = opt.force_direction == 2;
  if (opt.force_direction == 0) {
    frontier.is_sparse() ? void() : frontier.Sparsify();
    uint64_t work = frontier.Size();
    for (NodeId u : frontier.sparse_ids()) work += g.Degree(u);
    dense = work > g.NumDirectedEdges() / opt.dense_denominator;
  }

  std::vector<std::atomic<uint8_t>> out(n);
  ParallelFor(0, n, [&](uint64_t v) {
    out[v].store(0, std::memory_order_relaxed);
  });

  if (dense) {
    frontier.Densify();
    const auto& in_frontier = frontier.dense_flags();
    // Pull: each candidate target scans in-neighbors (graphs here are
    // symmetric, so in-neighbors == out-neighbors) and stops at the first
    // successful update.
    ParallelFor(
        0, n,
        [&](uint64_t vi) {
          const NodeId v = static_cast<NodeId>(vi);
          if (!cond(v)) return;
          bool done = false;
          g.MapNeighbors(v, [&](NodeId u) {
            if (done || !in_frontier[u]) return;
            if (update(u, v)) {
              out[v].store(1, std::memory_order_relaxed);
              done = true;
            }
          });
        },
        /*grain=*/64);
  } else {
    frontier.Sparsify();
    const auto& ids = frontier.sparse_ids();
    // Push: map over frontier vertices' out-edges.
    ParallelFor(
        0, ids.size(),
        [&](uint64_t i) {
          const NodeId u = ids[i];
          g.MapNeighbors(u, [&](NodeId v) {
            if (cond(v) && update(u, v)) {
              out[v].store(1, std::memory_order_relaxed);
            }
          });
        },
        /*grain=*/8);
  }

  std::vector<uint8_t> flags(n);
  ParallelFor(0, n, [&](uint64_t v) {
    flags[v] = out[v].load(std::memory_order_relaxed);
  });
  return VertexSubset(n, std::move(flags));
}

/// Applies fn(v) to every member of the subset and returns the members for
/// which fn returned true.
template <typename F>
VertexSubset VertexFilter(const VertexSubset& subset, F&& fn) {
  const NodeId n = subset.universe();
  std::vector<std::atomic<uint8_t>> keep(n);
  ParallelFor(0, n, [&](uint64_t v) {
    keep[v].store(0, std::memory_order_relaxed);
  });
  subset.Map([&](NodeId v) {
    if (fn(v)) keep[v].store(1, std::memory_order_relaxed);
  });
  std::vector<uint8_t> flags(n);
  ParallelFor(0, n, [&](uint64_t v) {
    flags[v] = keep[v].load(std::memory_order_relaxed);
  });
  return VertexSubset(n, std::move(flags));
}

}  // namespace lightne

#endif  // LIGHTNE_GRAPH_EDGE_MAP_H_
