#include "graph/weighted_csr.h"

#include <algorithm>

#include "parallel/scratch.h"
#include "parallel/sort.h"

namespace lightne {

WeightedCsrGraph WeightedCsrGraph::FromEdges(WeightedEdgeList list) {
  // Symmetrize.
  const size_t raw = list.edges.size();
  list.edges.reserve(2 * raw);
  for (size_t i = 0; i < raw; ++i) {
    const auto [u, v, w] = list.edges[i];
    list.edges.emplace_back(v, u, w);
  }
  // Sort by (src, dst); duplicates become adjacent.
  ParallelSort(list.edges.data(), list.edges.size(),
               [](const auto& a, const auto& b) {
                 return std::make_pair(std::get<0>(a), std::get<1>(a)) <
                        std::make_pair(std::get<0>(b), std::get<1>(b));
               });

  WeightedCsrGraph g;
  g.num_vertices_ = list.num_vertices;
  g.offsets_.assign(static_cast<size_t>(g.num_vertices_) + 1, 0);
  // Single sequential pass: advance per-source offsets, merge duplicate
  // (u, v) runs by summing weights, drop self loops. (The parallel sort
  // above dominates the cost.)
  NodeId next_source = 0;  // offsets_[0..next_source] are finalized
  for (const auto& [u, v, w] : list.edges) {
    LIGHTNE_CHECK_LT(u, g.num_vertices_);
    LIGHTNE_CHECK_LT(v, g.num_vertices_);
    LIGHTNE_CHECK_GT(w, 0.0f);
    if (u == v) continue;
    while (next_source < u) {
      g.offsets_[++next_source] = g.neighbors_.size();
    }
    const bool duplicate = g.neighbors_.size() > g.offsets_[u] &&
                           next_source == u && g.neighbors_.back() == v;
    if (duplicate) {
      g.weights_.back() += w;
    } else {
      g.neighbors_.push_back(v);
      g.weights_.push_back(w);
    }
  }
  while (next_source < g.num_vertices_) {
    g.offsets_[++next_source] = g.neighbors_.size();
  }

  // Cumulative weights and weighted degrees.
  g.cumulative_.resize(g.weights_.size());
  g.weighted_degree_.assign(g.num_vertices_, 0.0);
  ParallelFor(0, g.num_vertices_, [&](uint64_t v) {
    double running = 0;
    for (uint64_t k = g.offsets_[v]; k < g.offsets_[v + 1]; ++k) {
      running += g.weights_[k];
      g.cumulative_[k] = running;
    }
    g.weighted_degree_[v] = running;
  });
  double total = 0;
  for (NodeId v = 0; v < g.num_vertices_; ++v) {
    total += g.weighted_degree_[v];
  }
  g.total_weight_ = total;
  return g;
}

void WeightedCsrGraph::BuildAliasRow(uint64_t lo, uint64_t d, double total,
                                     double* prob, NodeId* idx) const {
  // Vose's method: scale probabilities by d, then pair each column whose
  // scaled mass is < 1 ("small") with one that is >= 1 ("large"), donating
  // the large column's excess. Two index stacks, O(d) time, numerically
  // safe: residual error only ever shifts mass between the paired columns.
  // Workspace comes from the caller's worker-local scratch arena — no
  // per-row heap traffic under the parallel builders.
  ScratchArena::Scope scratch(ScratchArena::ForCurrentThread());
  double* scaled = scratch.AllocArray<double>(d);
  NodeId* small = scratch.AllocArray<NodeId>(d);
  NodeId* large = scratch.AllocArray<NodeId>(d);
  uint64_t nsmall = 0, nlarge = 0;
  for (uint64_t i = 0; i < d; ++i) {
    scaled[i] = static_cast<double>(weights_[lo + i]) *
                static_cast<double>(d) / total;
    if (scaled[i] < 1.0) {
      small[nsmall++] = static_cast<NodeId>(i);
    } else {
      large[nlarge++] = static_cast<NodeId>(i);
    }
  }
  while (nsmall > 0 && nlarge > 0) {
    const NodeId s = small[--nsmall];
    const NodeId l = large[nlarge - 1];
    prob[s] = scaled[s];
    idx[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      --nlarge;
      small[nsmall++] = l;
    }
  }
  // Leftovers (in exact arithmetic these have mass exactly 1).
  while (nlarge > 0) {
    const NodeId i = large[--nlarge];
    prob[i] = 1.0;
    idx[i] = i;
  }
  while (nsmall > 0) {
    const NodeId i = small[--nsmall];
    prob[i] = 1.0;
    idx[i] = i;
  }
}

void WeightedCsrGraph::BuildAliasTable() {
  LIGHTNE_CHECK_MSG(!degree_gated(),
                    "BuildAliasTable after BuildDegreeGatedAlias would undo "
                    "its memory cut; build one or the other");
  if (!alias_prob_.empty()) return;
  alias_prob_.resize(weights_.size());
  alias_idx_.resize(weights_.size());
  ParallelFor(
      0, num_vertices_,
      [&](uint64_t v) {
        const uint64_t lo = offsets_[v];
        const uint64_t d = offsets_[v + 1] - lo;
        if (d == 0) return;
        BuildAliasRow(lo, d, weighted_degree_[v], alias_prob_.data() + lo,
                      alias_idx_.data() + lo);
      },
      /*grain=*/64);
}

void WeightedCsrGraph::BuildDegreeGatedAlias(uint32_t degree_gate) {
  LIGHTNE_CHECK_GE(degree_gate, 1u);
  LIGHTNE_CHECK_MSG(!has_alias_table(),
                    "BuildDegreeGatedAlias after BuildAliasTable would not "
                    "save memory; build one or the other");
  if (degree_gated()) return;
  degree_gate_ = degree_gate;

  // Sequential slot assignment: rows pack in vertex order, hubs into the
  // alias arrays, everything below the gate into the compact CDF array.
  sample_slot_.resize(num_vertices_);
  uint64_t alias_entries = 0;
  uint64_t cdf_entries = 0;
  for (NodeId v = 0; v < num_vertices_; ++v) {
    const uint64_t d = offsets_[v + 1] - offsets_[v];
    if (d >= degree_gate) {
      sample_slot_[v] = kAliasBit | alias_entries;
      alias_entries += d;
    } else {
      sample_slot_[v] = cdf_entries;
      cdf_entries += d;
    }
  }
  gated_alias_prob_.resize(alias_entries);
  gated_alias_idx_.resize(alias_entries);
  gated_cumulative_.resize(cdf_entries);

  ParallelFor(
      0, num_vertices_,
      [&](uint64_t v) {
        const uint64_t lo = offsets_[v];
        const uint64_t d = offsets_[v + 1] - lo;
        if (d == 0) return;
        const uint64_t base = sample_slot_[v] & kSlotMask;
        if ((sample_slot_[v] & kAliasBit) != 0) {
          BuildAliasRow(lo, d, weighted_degree_[v],
                        gated_alias_prob_.data() + base,
                        gated_alias_idx_.data() + base);
        } else {
          // Same left-to-right double summation as FromEdges' cumulative
          // pass, so cold draws match SampleNeighborPrefixScan bit for bit.
          double running = 0;
          for (uint64_t i = 0; i < d; ++i) {
            running += weights_[lo + i];
            gated_cumulative_[base + i] = running;
          }
        }
      },
      /*grain=*/64);

  // The memory cut: the full per-edge cumulative array is now redundant
  // (hubs sample via alias rows, cold vertices via their compact copy).
  cumulative_.clear();
  cumulative_.shrink_to_fit();
}

}  // namespace lightne
