#include "graph/weighted_csr.h"

#include <algorithm>

#include "parallel/sort.h"

namespace lightne {

WeightedCsrGraph WeightedCsrGraph::FromEdges(WeightedEdgeList list) {
  // Symmetrize.
  const size_t raw = list.edges.size();
  list.edges.reserve(2 * raw);
  for (size_t i = 0; i < raw; ++i) {
    const auto [u, v, w] = list.edges[i];
    list.edges.emplace_back(v, u, w);
  }
  // Sort by (src, dst); duplicates become adjacent.
  ParallelSort(list.edges.data(), list.edges.size(),
               [](const auto& a, const auto& b) {
                 return std::make_pair(std::get<0>(a), std::get<1>(a)) <
                        std::make_pair(std::get<0>(b), std::get<1>(b));
               });

  WeightedCsrGraph g;
  g.num_vertices_ = list.num_vertices;
  g.offsets_.assign(static_cast<size_t>(g.num_vertices_) + 1, 0);
  // Single sequential pass: advance per-source offsets, merge duplicate
  // (u, v) runs by summing weights, drop self loops. (The parallel sort
  // above dominates the cost.)
  NodeId next_source = 0;  // offsets_[0..next_source] are finalized
  for (const auto& [u, v, w] : list.edges) {
    LIGHTNE_CHECK_LT(u, g.num_vertices_);
    LIGHTNE_CHECK_LT(v, g.num_vertices_);
    LIGHTNE_CHECK_GT(w, 0.0f);
    if (u == v) continue;
    while (next_source < u) {
      g.offsets_[++next_source] = g.neighbors_.size();
    }
    const bool duplicate = g.neighbors_.size() > g.offsets_[u] &&
                           next_source == u && g.neighbors_.back() == v;
    if (duplicate) {
      g.weights_.back() += w;
    } else {
      g.neighbors_.push_back(v);
      g.weights_.push_back(w);
    }
  }
  while (next_source < g.num_vertices_) {
    g.offsets_[++next_source] = g.neighbors_.size();
  }

  // Cumulative weights and weighted degrees.
  g.cumulative_.resize(g.weights_.size());
  g.weighted_degree_.assign(g.num_vertices_, 0.0);
  ParallelFor(0, g.num_vertices_, [&](uint64_t v) {
    double running = 0;
    for (uint64_t k = g.offsets_[v]; k < g.offsets_[v + 1]; ++k) {
      running += g.weights_[k];
      g.cumulative_[k] = running;
    }
    g.weighted_degree_[v] = running;
  });
  double total = 0;
  for (NodeId v = 0; v < g.num_vertices_; ++v) {
    total += g.weighted_degree_[v];
  }
  g.total_weight_ = total;
  return g;
}

void WeightedCsrGraph::BuildAliasTable() {
  if (!alias_prob_.empty()) return;
  alias_prob_.resize(weights_.size());
  alias_idx_.resize(weights_.size());
  ParallelFor(
      0, num_vertices_,
      [&](uint64_t v) {
        const uint64_t lo = offsets_[v];
        const uint64_t d = offsets_[v + 1] - lo;
        if (d == 0) return;
        // Vose's method: scale probabilities by d, then pair each column
        // whose scaled mass is < 1 ("small") with one that is >= 1
        // ("large"), donating the large column's excess. Two index stacks,
        // O(d) time, numerically safe: residual error only ever shifts mass
        // between the paired columns.
        const double total = weighted_degree_[v];
        std::vector<double> scaled(d);
        std::vector<NodeId> small, large;
        small.reserve(d);
        large.reserve(d);
        for (uint64_t i = 0; i < d; ++i) {
          scaled[i] = static_cast<double>(weights_[lo + i]) *
                      static_cast<double>(d) / total;
          (scaled[i] < 1.0 ? small : large).push_back(static_cast<NodeId>(i));
        }
        while (!small.empty() && !large.empty()) {
          const NodeId s = small.back();
          const NodeId l = large.back();
          small.pop_back();
          alias_prob_[lo + s] = scaled[s];
          alias_idx_[lo + s] = l;
          scaled[l] -= 1.0 - scaled[s];
          if (scaled[l] < 1.0) {
            large.pop_back();
            small.push_back(l);
          }
        }
        // Leftovers (in exact arithmetic these have mass exactly 1).
        for (const NodeId i : large) {
          alias_prob_[lo + i] = 1.0;
          alias_idx_[lo + i] = i;
        }
        for (const NodeId i : small) {
          alias_prob_[lo + i] = 1.0;
          alias_idx_[lo + i] = i;
        }
      },
      /*grain=*/64);
}

}  // namespace lightne
