// Batch varint decoding for the compressed-graph cold tier.
//
// The parallel-byte format (graph/compressed.h) difference-encodes neighbor
// lists as LEB128 varints. Scalar decode is a loop-carried dependence — each
// varint's width gates the next load — and BENCH_sampler.json shows that tax
// dominating out-of-LLC walks once the hub pool no longer fits. This module
// decodes a whole block's varints in one sweep with SSSE3/AVX2 shuffle
// tables (masked-VByte style): one 16-byte load yields the continuation-bit
// mask of 16 bytes at once, a 256-entry table keyed on the low 8 mask bits
// turns runs of short varints into a single pshufb + mask/shift, and an
// all-ASCII mask short-circuits to N one-byte varints with no per-varint
// branching at all.
//
// Dispatch contract (DESIGN.md §13):
//  - the scalar batch decoder is the reference semantics; the SIMD arms
//    produce bit-identical output for every well-formed stream, so decode
//    backend choice can never change a walk stream;
//  - the backend is resolved at runtime via __builtin_cpu_supports (unlike
//    util/artifact_io's crc32c, which may gate on compile-time __SSE4_2__
//    because CI builds run where they compile, the graph library ships
//    generic binaries), priority avx2 > ssse3 > scalar;
//  - `LIGHTNE_FORCE_SCALAR_DECODE` forces the scalar arm: as a CMake option
//    it compiles the SIMD arms out entirely, as a runtime env var it just
//    wins the dispatch — CI uses both to test each arm;
//  - SIMD decode loads 16 bytes at a time, so the encoded stream must be
//    readable kVarintDecodeSlack bytes past its end. CompressedGraph
//    allocates that slack in FromCsr; callers decoding foreign buffers must
//    provide it themselves.
#ifndef LIGHTNE_GRAPH_VARINT_SIMD_H_
#define LIGHTNE_GRAPH_VARINT_SIMD_H_

#include <cstdint>

namespace lightne {

/// Readable bytes required past the end of any stream handed to the batch
/// decoder (one full SIMD load starting at the stream's last byte).
inline constexpr uint64_t kVarintDecodeSlack = 16;

/// Decodes `count` LEB128 varints from `p` into out[0..count). Returns the
/// byte position after the last consumed byte. `p` must have
/// kVarintDecodeSlack readable slack bytes after the encoded data.
using VarintBatchFn = const uint8_t* (*)(const uint8_t* p, uint64_t count,
                                         uint64_t* out);

/// The scalar reference decoder: one LEB128 loop per varint, byte-exact with
/// CompressedGraph's inline DecodeVarint. Always available; never reads past
/// the consumed bytes (slack unused).
const uint8_t* DecodeVarintBatchScalar(const uint8_t* p, uint64_t count,
                                       uint64_t* out);

/// Fused difference-decode: reads `count` LEB128 varints, accumulates each
/// into `*base_io` (mod 2^32 — both arms accumulate in uint32), and writes
/// every running sum to out[0..count). Returns the byte after the last
/// consumed varint; `*base_io` holds the final sum for resumed decodes.
/// This is the walk cold tier's inner loop (CompressedGraph block prefixes):
/// decode and prefix sum in one pass, no staging buffer — the SIMD arms keep
/// the running sum in a register (4-lane shift-add prefix + lane-3 carry
/// broadcast). Same slack contract as VarintBatchFn.
using VarintDeltaPrefixFn = const uint8_t* (*)(const uint8_t* p,
                                               uint64_t count,
                                               uint32_t* base_io,
                                               uint32_t* out);

/// Scalar reference for the fused difference-decode.
const uint8_t* DecodeDeltaPrefixScalar(const uint8_t* p, uint64_t count,
                                       uint32_t* base_io, uint32_t* out);

enum class VarintBackend {
  kAuto = 0,    // env override, then best CPU-supported arm
  kScalar = 1,  // force the scalar reference
  kSimd = 2,    // force the best SIMD arm (falls back to scalar if none)
};

/// The currently active batch decoder. Resolved lazily on first use under
/// kAuto policy; a relaxed atomic load afterwards (hot-path safe).
VarintBatchFn ActiveVarintDecoder();

/// The currently active fused difference-decoder (same dispatch state as
/// ActiveVarintDecoder — one backend governs both entry points).
VarintDeltaPrefixFn ActiveDeltaPrefixDecoder();

/// Name of the active arm: "scalar", "ssse3", or "avx2".
const char* VarintBackendName();

/// True when the active arm is a SIMD one (observability; decode policy and
/// decoded values never depend on it).
bool VarintBackendIsSimd();

/// Re-resolves the dispatch (tests and benches exercise both arms in one
/// process). kAuto re-reads the LIGHTNE_FORCE_SCALAR_DECODE env var. Not
/// intended to be called concurrently with decoding: each decode call reads
/// the pointer once, so the switch is safe but which arm a racing decode
/// uses would be unspecified.
void SetVarintBackend(VarintBackend backend);

/// True when the SIMD arms were compiled in (x86-64 and not built with
/// -DLIGHTNE_FORCE_SCALAR_DECODE=ON).
bool VarintSimdCompiledIn();

}  // namespace lightne

#endif  // LIGHTNE_GRAPH_VARINT_SIMD_H_
