// Uncompressed CSR graph: the baseline representation. Symmetric (every edge
// stored in both directions), unweighted, neighbor lists sorted ascending.
#ifndef LIGHTNE_GRAPH_CSR_H_
#define LIGHTNE_GRAPH_CSR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge_list.h"
#include "graph/types.h"
#include "parallel/parallel_for.h"
#include "util/check.h"

namespace lightne {

/// Compressed-sparse-row adjacency structure with O(1) i-th neighbor access.
/// Satisfies the GraphView interface used by all algorithms (see
/// graph/graph_view.h).
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds from a *clean* edge list: symmetric, sorted, no duplicates, no
  /// self loops (see SymmetrizeAndClean). CHECK-fails on out-of-range ids.
  static CsrGraph FromCleanEdgeList(const EdgeList& list);

  /// Convenience: symmetrizes/cleans a copy of `list`, then builds.
  static CsrGraph FromEdges(EdgeList list);

  NodeId NumVertices() const { return num_vertices_; }

  /// Number of directed edges stored (= 2m for an undirected graph with m
  /// undirected edges).
  EdgeId NumDirectedEdges() const { return neighbors_.size(); }

  /// Number of undirected edges m.
  EdgeId NumUndirectedEdges() const { return neighbors_.size() / 2; }

  /// vol(G) = sum of degrees = 2m.
  double Volume() const { return static_cast<double>(NumDirectedEdges()); }

  uint64_t Degree(NodeId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// The i-th neighbor of v (0-based, sorted ascending). O(1).
  NodeId Neighbor(NodeId v, uint64_t i) const {
    return neighbors_[offsets_[v] + i];
  }

  /// Neighbor list of v as a contiguous span.
  std::span<const NodeId> Neighbors(NodeId v) const {
    return {neighbors_.data() + offsets_[v], Degree(v)};
  }

  /// Applies fn(neighbor) over v's neighbors, sequentially.
  template <typename F>
  void MapNeighbors(NodeId v, F&& fn) const {
    for (NodeId u : Neighbors(v)) fn(u);
  }

  /// Applies fn(u, v) over every directed edge, in parallel over vertices.
  template <typename F>
  void MapEdges(F&& fn) const {
    ParallelFor(
        0, num_vertices_,
        [&](uint64_t u) {
          for (NodeId v : Neighbors(static_cast<NodeId>(u))) {
            fn(static_cast<NodeId>(u), v);
          }
        },
        /*grain=*/64);
  }

  /// Applies fn(v) over every vertex in parallel.
  template <typename F>
  void MapVertices(F&& fn) const {
    ParallelFor(0, num_vertices_,
                [&](uint64_t v) { fn(static_cast<NodeId>(v)); });
  }

  /// Bytes used by the offsets + neighbor arrays.
  uint64_t SizeBytes() const {
    return offsets_.size() * sizeof(uint64_t) +
           neighbors_.size() * sizeof(NodeId);
  }

  /// Exports the graph back to a (clean, symmetric, sorted) edge list.
  EdgeList ToEdgeList() const;

  const std::vector<uint64_t>& offsets() const { return offsets_; }
  const std::vector<NodeId>& neighbors() const { return neighbors_; }

 private:
  NodeId num_vertices_ = 0;
  std::vector<uint64_t> offsets_;   // size num_vertices_ + 1
  std::vector<NodeId> neighbors_;   // size = #directed edges
};

}  // namespace lightne

#endif  // LIGHTNE_GRAPH_CSR_H_
