// Per-walk decode state threaded through the walk primitives.
//
// Random-walk steps resolve Neighbor(v, i): O(1) on raw CSR, but O(block)
// on the parallel-byte compressed format — every step of every walk
// re-decoded its block from scratch, which made the compressed sampler pay
// a varint tax the paper's time breakdown attributes to the sampling stage.
//
// Two pieces cooperate (DESIGN.md §13, "Walk engine"):
//
//  - WalkAccel<G>: phase-level shared acceleration state, built once per
//    sampling phase (MakeWalkAccel) and read concurrently by every worker.
//    For CompressedGraph it holds the HubCache — the decoded adjacencies of
//    the top-degree vertices, pinned for the phase under a byte budget
//    accountable to the MemoryBudget governor. Degree skew means those few
//    hubs absorb most walk draws, so the common case becomes a plain array
//    index.
//  - WalkContext<G>: the per-worker cursor a caller stack-allocates once
//    per worker and passes down the walk call chain. For most graphs it is
//    empty (zero-cost). For CompressedGraph it is the cold tier under the
//    pinned one: a small direct-mapped cache of (vertex, block) slots whose
//    buffers live in the worker's ScratchArena. A block is batch-decoded in
//    one varint sweep on its second touch (single-visit blocks decode only
//    up to the requested index), amortizing decode over the walk window.
//
// Contract: neither tier ever touches the RNG and Neighbor() returns
// exactly g.Neighbor(v, i), so walks draw bit-identical endpoints with or
// without an accel/context, at any worker count — they are purely decode
// caches. A context must not outlive its graph or accel, must always be
// used with the same graph, and must stay on the thread that built it (its
// buffers come from that thread's scratch arena).
#ifndef LIGHTNE_GRAPH_WALK_CURSOR_H_
#define LIGHTNE_GRAPH_WALK_CURSOR_H_

#include "graph/compressed.h"
#include "graph/graph_view.h"
#include "graph/types.h"
#include "parallel/scratch.h"
#include "util/memory.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace lightne {

/// Shared per-phase walk acceleration state. Default: none.
template <typename G>
struct WalkAccel {};

/// Compressed graphs pin the decoded top-degree adjacencies per phase.
template <>
struct WalkAccel<CompressedGraph> {
  CompressedGraph::HubCache pinned;
};

/// Builds the walk accelerator for a sampling phase. The generic form is a
/// no-op (direct-access graphs need no acceleration); the CompressedGraph
/// form builds the HubCache under `pin_budget_bytes` (0 disables pinning),
/// reserving the actual footprint against `budget` when one is given.
template <typename G>
WalkAccel<G> MakeWalkAccel(const G& /*g*/, uint64_t /*pin_budget_bytes*/,
                           MemoryBudget* /*budget*/ = nullptr) {
  return {};
}
inline WalkAccel<CompressedGraph> MakeWalkAccel(
    const CompressedGraph& g, uint64_t pin_budget_bytes,
    MemoryBudget* budget = nullptr) {
  WalkAccel<CompressedGraph> accel;
  accel.pinned =
      CompressedGraph::HubCache::Build(g, pin_budget_bytes, budget);
  return accel;
}

/// Default context: direct Neighbor access, no state.
template <typename G>
struct WalkContext {
  WalkContext() = default;
  explicit WalkContext(const WalkAccel<G>& /*accel*/) {}

  NodeId Neighbor(const G& g, NodeId v, uint64_t i) {
    return g.Neighbor(v, i);
  }
};

/// Compressed graphs: two-tier decode cache (pinned hubs + batch-decoded
/// cold blocks). Default-constructed contexts run cold-tier only, so every
/// existing `WalkContext<G> ctx;` call site keeps working without an accel.
template <>
struct WalkContext<CompressedGraph> {
  WalkContext() : scope_(ScratchArena::ForCurrentThread()) {}
  explicit WalkContext(const WalkAccel<CompressedGraph>& accel)
      : WalkContext() {
    if (!accel.pinned.empty()) pinned_ = &accel.pinned;
  }

  // Publishes this context's tier counters into the process metrics
  // registry (util/metrics.h) exactly once, at end of worker scope, so the
  // hot loop never touches a shared cache line. `walk/pin_hits` is a pure
  // function of the (deterministic) walk stream and the pinned set, hence
  // bit-identical across worker counts; the cold-tier counters depend on
  // per-worker slot residency, so they are deterministic only for a fixed
  // worker count.
  ~WalkContext() {
    if ((pin_hits_ | cold_hits_ | decode_misses_) != 0) {
      MetricsRegistry& m = MetricsRegistry::Global();
      m.GetCounter("walk/pin_hits")->Add(pin_hits_);
      m.GetCounter("walk/cold_hits")->Add(cold_hits_);
      m.GetCounter("walk/decode_misses")->Add(decode_misses_);
    }
  }
  WalkContext(const WalkContext&) = delete;
  WalkContext& operator=(const WalkContext&) = delete;

  NodeId Neighbor(const CompressedGraph& g, NodeId v, uint64_t i) {
    if (pinned_ != nullptr) {
      const NodeId* row = pinned_->Row(v);
      if (row != nullptr) {
        ++pin_hits_;
        return row[i];
      }
    }
    return ColdNeighbor(g, v, i);
  }

  /// Draws served by the pinned tier (array read, no decode).
  uint64_t pin_hits() const { return pin_hits_; }
  /// Draws served by a resident batch-decoded cold block.
  uint64_t cold_hits() const { return cold_hits_; }
  /// Draws that decoded varints (inline, first-touch, or block promotion).
  uint64_t decode_misses() const { return decode_misses_; }

 private:
  NodeId ColdNeighbor(const CompressedGraph& g, NodeId v, uint64_t i) {
    const uint64_t b = i / g.block_size();
    const uint64_t within = i - b * g.block_size();
    // A draw's inline decode cost is proportional to `within`: draws near a
    // block start cost fewer cycles than the cache bookkeeping, so they
    // decode directly and never touch — or evict — a slot.
    if (within <= kDirectWithin) {
      ++decode_misses_;
      return g.Neighbor(v, i);
    }
    // Direct-mapped slot for (v, b). Multiplicative mix on the packed key;
    // taking high bits keeps distinct blocks of the same hub apart.
    const uint64_t key = (static_cast<uint64_t>(v) << 20) ^ b;
    const uint64_t slot = (key * 0x9E3779B97F4A7C15ull) >> (64 - kLog2Slots);
    Slot& s = slots_[slot];
    if (s.v == v && s.block == b) {
      NodeId* buf = pool_ + slot * stride_;
      if (s.decoded) {
        ++cold_hits_;
        return buf[within];
      }
      // Second touch of the resident tag: more than one draw landed in this
      // block, so batch-decode it in one varint sweep. Every further draw is
      // an array read.
      ++decode_misses_;
      Timer timer;
      g.DecodeBlock(v, b, buf);
      DecodeLatencyUs()->Observe(timer.Seconds() * 1e6);
      s.decoded = true;
      return buf[within];
    }
    // First touch: tag the slot but decode only up to the requested index —
    // a block visited once must not pay a full-block decode.
    if (pool_ == nullptr) {
      stride_ = g.block_size();
      pool_ = scope_.AllocArray<NodeId>(kSlots * stride_);
    }
    s.v = v;
    s.block = b;
    s.decoded = false;
    ++decode_misses_;
    return g.Neighbor(v, i);
  }

  static Histogram* DecodeLatencyUs() {
    // Microsecond buckets around the cost of one 64-varint block sweep.
    static Histogram* h = MetricsRegistry::Global().GetHistogram(
        "walk/decode_block_us", {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0});
    return h;
  }

  static constexpr uint32_t kLog2Slots = 7;  // 128 direct-mapped slots
  static constexpr uint64_t kSlots = uint64_t{1} << kLog2Slots;
  static constexpr uint64_t kDirectWithin = 8;
  static constexpr uint64_t kNoVertex = ~uint64_t{0};

  struct Slot {
    uint64_t v = kNoVertex;  // vertex id (kNoVertex = empty)
    uint64_t block = 0;
    bool decoded = false;  // false: tagged on first touch, not yet promoted
  };

  Slot slots_[kSlots];
  const CompressedGraph::HubCache* pinned_ = nullptr;
  NodeId* pool_ = nullptr;  // kSlots * stride_, lazily from the arena
  uint64_t stride_ = 0;     // == graph block_size() once allocated
  uint64_t pin_hits_ = 0;
  uint64_t cold_hits_ = 0;
  uint64_t decode_misses_ = 0;
  // Declared last so buffers outlive nothing in this object; reclaimed (for
  // reuse, not freed) when the context leaves worker scope.
  ScratchArena::Scope scope_;
};

}  // namespace lightne

#endif  // LIGHTNE_GRAPH_WALK_CURSOR_H_
