// Per-walk decode state threaded through the walk primitives.
//
// Random-walk steps resolve Neighbor(v, i): O(1) on raw CSR, but O(block)
// on the parallel-byte compressed format — every step of every walk
// re-decoded its block from scratch, which made the compressed sampler pay
// a varint tax the paper's time breakdown attributes to the sampling stage.
//
// Two pieces cooperate (DESIGN.md §13, "Walk engine"):
//
//  - WalkAccel<G>: phase-level shared acceleration state, built once per
//    sampling phase (MakeWalkAccel) and read concurrently by every worker.
//    For CompressedGraph it holds the HubCache — block-aligned decoded
//    prefixes of the hottest vertices, pinned for the phase under a byte
//    budget accountable to the MemoryBudget governor. Degree skew means
//    those prefixes absorb most walk draws, so the common case becomes a
//    plain array index.
//  - WalkContext<G>: the per-worker cursor a caller stack-allocates once
//    per worker and passes down the walk call chain. For most graphs it is
//    empty (zero-cost). For CompressedGraph it is the cold tier under the
//    pinned one: a small 2-way set-associative cache of (vertex, block)
//    slots whose buffers live in the worker's ScratchArena. Each slot holds
//    a lazily-extended decoded *prefix* of its block, grown by the batch
//    varint decoder (graph/varint_simd.h) through a resumable
//    CompressedGraph::BlockCursor: a draw at index i pays one offset walk
//    plus i+1 batch-decoded varints on first touch, and revisits either
//    read the buffer or extend from the saved stream position — no draw
//    ever pays a speculative full-block sweep, and no revisit re-walks the
//    offset tables. Draws are served in walk order: the slot serving the
//    previous draw short-circuits before any probe (consecutive draws
//    landing in one block share one prefix), and the two ways per set keep
//    the interleaved u-/v-endpoint blocks of a path sample resident
//    together instead of evicting each other.
//
// Contract: neither tier ever touches the RNG and Neighbor() returns
// exactly g.Neighbor(v, i), so walks draw bit-identical endpoints with or
// without an accel/context, at any worker count and under any decode
// backend — they are purely decode caches. The tier counters are policy
// observables: deterministic for a fixed worker count (slot residency
// depends on each worker's draw order), and backend-independent — the
// prefix policy decodes the same entries under every dispatch arm. A
// context must not outlive its graph or accel, must always be used with
// the same graph, and must stay on the thread that built it (its buffers
// come from that thread's scratch arena).
#ifndef LIGHTNE_GRAPH_WALK_CURSOR_H_
#define LIGHTNE_GRAPH_WALK_CURSOR_H_

#include <cstring>

#include "graph/compressed.h"
#include "graph/graph_view.h"
#include "graph/types.h"
#include "parallel/scratch.h"
#include "util/memory.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace lightne {

/// Shared per-phase walk acceleration state. Default: none.
template <typename G>
struct WalkAccel {};

/// Compressed graphs pin decoded top-degree prefixes per phase.
template <>
struct WalkAccel<CompressedGraph> {
  CompressedGraph::HubCache pinned;
};

/// Builds the walk accelerator for a sampling phase. The generic form is a
/// no-op (direct-access graphs need no acceleration); the CompressedGraph
/// form builds the HubCache under `pin_budget_bytes` (0 disables pinning),
/// reserving the actual footprint against `budget` when one is given.
template <typename G>
WalkAccel<G> MakeWalkAccel(const G& /*g*/, uint64_t /*pin_budget_bytes*/,
                           MemoryBudget* /*budget*/ = nullptr) {
  return {};
}
inline WalkAccel<CompressedGraph> MakeWalkAccel(
    const CompressedGraph& g, uint64_t pin_budget_bytes,
    MemoryBudget* budget = nullptr) {
  WalkAccel<CompressedGraph> accel;
  accel.pinned =
      CompressedGraph::HubCache::Build(g, pin_budget_bytes, budget);
  return accel;
}

/// Default context: direct Neighbor access, no state.
template <typename G>
struct WalkContext {
  WalkContext() = default;
  explicit WalkContext(const WalkAccel<G>& /*accel*/) {}

  /// Degree of v, exactly g.Degree(v). Walk steps resolve the degree
  /// through the context so accelerated contexts can serve it from their
  /// own (smaller, hotter) structures.
  uint64_t Degree(const G& g, NodeId v) { return g.Degree(v); }

  NodeId Neighbor(const G& g, NodeId v, uint64_t i) {
    return g.Neighbor(v, i);
  }

  /// Batched-walk hints (see WeightedRandomWalkBatch): stage-1 fires before
  /// a lane's Degree(v), stage-2 between its draw and Neighbor(v, i).
  /// Direct-access graphs need neither.
  void PrefetchStep(const G& /*g*/, NodeId /*v*/) {}
  void PrefetchDraw(const G& /*g*/, NodeId /*v*/, uint64_t /*i*/) {}
};

/// Compressed graphs: two-tier decode cache (pinned hub prefixes +
/// lazily-extended cold-block prefixes). Default-constructed contexts run
/// cold-tier only, so every existing `WalkContext<G> ctx;` call site keeps
/// working without an accel.
template <>
struct WalkContext<CompressedGraph> {
  WalkContext() : scope_(ScratchArena::ForCurrentThread()) {}
  explicit WalkContext(const WalkAccel<CompressedGraph>& accel)
      : WalkContext() {
    if (!accel.pinned.empty()) {
      hub_index_ = accel.pinned.index();
      hub_mask_ = accel.pinned.index_mask();
      hub_gate_ = accel.pinned.degree_gate();
      pinned_pool_ = accel.pinned.pool();
      pool_width_ = accel.pinned.pool_entry_width();
      pool_mask_ = accel.pinned.pool_value_mask();
    }
  }

  // Publishes this context's tier counters into the process metrics
  // registry (util/metrics.h) exactly once, at end of worker scope, so the
  // hot loop never touches a shared cache line. `walk/pin_hits` is a pure
  // function of the (deterministic) walk stream and the pinned set, hence
  // bit-identical across worker counts; the cold-tier counters depend on
  // per-worker slot residency, so they are deterministic only for a fixed
  // worker count (but are backend-independent).
  ~WalkContext() {
    if ((pin_hits_ | cold_hits_ | decode_misses_) != 0) {
      MetricsRegistry& m = MetricsRegistry::Global();
      m.GetCounter("walk/pin_hits")->Add(pin_hits_);
      m.GetCounter("walk/cold_hits")->Add(cold_hits_);
      m.GetCounter("walk/decode_misses")->Add(decode_misses_);
    }
  }
  WalkContext(const WalkContext&) = delete;
  WalkContext& operator=(const WalkContext&) = delete;

  /// Degree of v, exactly g.Degree(v). With a pinned tier attached this
  /// probes the (L2-resident) hub index *first* and serves pinned degrees
  /// from the index entry, never touching the n-sized degree array — on
  /// the serial chain of a walk step (degree -> draw -> neighbor) that
  /// removes the step's first LLC miss for every pinned vertex. The probe
  /// result is memoized for the Neighbor() call of the same step.
  uint64_t Degree(const CompressedGraph& g, NodeId v) {
    if (hub_index_ != nullptr) {
      // Start the cold-fallback loads before probing: whether the probe
      // hits is data-dependent (an unpredictable branch at typical pin
      // rates), so without the hint the degree/offset fetches only issue
      // once the probe chain resolves or speculation guesses right.
      g.PrefetchVertex(v);
      const CompressedGraph::HubCache::Entry* e = FindHub(v);
      probe_v_ = v;
      probe_e_ = e;
      if (e != nullptr) return e->deg;
    }
    return g.Degree(v);
  }

  NodeId Neighbor(const CompressedGraph& g, NodeId v, uint64_t i) {
    if (hub_index_ != nullptr) {
      // Reuse the probe the Degree() of this step already paid; callers
      // that draw without Degree() fall back to the degree gate (admission
      // is degree-descending, so a vertex below the gate cannot be pinned
      // and skips the probe entirely).
      const CompressedGraph::HubCache::Entry* e =
          probe_v_ == v ? probe_e_
                        : (g.Degree(v) >= hub_gate_ ? FindHub(v) : nullptr);
      if (e != nullptr && i < e->len) {
        ++pin_hits_;
        // One unaligned 4-byte load masked to the packed entry width (the
        // pool carries kPoolSlack readable bytes past its end).
        uint32_t val;
        std::memcpy(&val, pinned_pool_ + (uint64_t{e->off} + i) * pool_width_,
                    sizeof(val));
        return static_cast<NodeId>(val & pool_mask_);
      }
    }
    return ColdNeighbor(g, v, i);
  }

  /// Stage-1 batch hint: starts the lines the upcoming Degree(v) resolves
  /// through — the hub-index slot plus the cold-fallback degree/offset
  /// lines (all functions of v alone). Issued for every lockstep lane
  /// before any lane's Degree() blocks, so the lanes' miss chains overlap.
  void PrefetchStep(const CompressedGraph& g, NodeId v) {
    g.PrefetchVertex(v);
#if defined(__GNUC__) || defined(__clang__)
    if (hub_index_ != nullptr) {
      __builtin_prefetch(
          &hub_index_[CompressedGraph::HubCache::ProbeSlot(v, hub_mask_)],
          /*rw=*/0, /*locality=*/2);
    }
#endif
  }

  /// Stage-2 batch hint: once lane draws are known, starts the one line the
  /// upcoming Neighbor(v, i) still misses on — the pinned-pool line for a
  /// pinned v, else the first line of v's encoded region. The probe here
  /// re-walks index lines the lane's Degree() just touched (L1-hot); the
  /// single-slot probe memo belongs to whichever lane resolved Degree()
  /// last, so it cannot be reused across lanes.
  void PrefetchDraw(const CompressedGraph& g, NodeId v, uint64_t i) {
#if defined(__GNUC__) || defined(__clang__)
    if (hub_index_ != nullptr && g.Degree(v) >= hub_gate_) {
      const CompressedGraph::HubCache::Entry* e = FindHub(v);
      if (e != nullptr && i < e->len) {
        __builtin_prefetch(
            pinned_pool_ + (uint64_t{e->off} + i) * pool_width_, /*rw=*/0,
            /*locality=*/2);
        return;
      }
    }
    g.PrefetchRegion(v);
#else
    (void)g;
    (void)v;
    (void)i;
#endif
  }

  /// Draws served by the pinned tier (array read, no decode).
  uint64_t pin_hits() const { return pin_hits_; }
  /// Draws served by an already-decoded slot prefix (array read).
  uint64_t cold_hits() const { return cold_hits_; }
  /// Draws that decoded varints (inline, prefix start, or extension).
  uint64_t decode_misses() const { return decode_misses_; }

 private:
  struct Slot {
    uint64_t v = kNoVertex;  // vertex id (kNoVertex = empty)
    uint64_t block = 0;
    CompressedGraph::BlockCursor cur;  // resumable decoded-prefix state
  };

  NodeId ColdNeighbor(const CompressedGraph& g, NodeId v, uint64_t i) {
    const uint64_t b = i / g.block_size();
    const uint64_t within = i - b * g.block_size();
    // Walk-order fast path: the slot serving the previous draw answers
    // without probing the set array when its prefix already covers this
    // index — consecutive same-block draws (walk steps circling a hub,
    // path-sample endpoints meeting) share one decoded prefix.
    if (mru_slot_ != nullptr && v == mru_slot_->v && b == mru_slot_->block &&
        within < mru_slot_->cur.decoded) {
      ++cold_hits_;
      return mru_buf_[within];
    }
    // A draw's inline decode cost is proportional to `within`: draws near a
    // block start cost fewer cycles than the slot bookkeeping, so they
    // decode directly and never probe, claim, or evict a slot. (The probed
    // tiers above still serve them when the MRU short-circuit matches.)
    if (within <= kDirectWithin) {
      ++decode_misses_;
      return g.Neighbor(v, i);
    }
    // 2-way set-associative probe for (v, b). Multiplicative mix on the
    // packed key; taking high bits keeps distinct blocks of a hub apart.
    const uint64_t key = (static_cast<uint64_t>(v) << 20) ^ b;
    const uint64_t set = (key * 0x9E3779B97F4A7C15ull) >> (64 - kLog2Sets);
    Slot* ways = &slots_[set * 2];
    for (uint32_t w = 0; w < 2; ++w) {
      Slot& s = ways[w];
      if (s.v != v || s.block != b) continue;
      NodeId* buf = pool_ + (set * 2 + w) * stride_;
      recent_[set] = static_cast<uint8_t>(w);
      if (within < s.cur.decoded) {
        ++cold_hits_;
        Remember(&s, buf);
        return buf[within];
      }
      // Resident but short: extend the prefix from the saved stream
      // position — batch-decodes only the missing entries, and skips the
      // offset-table walk a fresh Neighbor() would pay.
      ++decode_misses_;
      g.ExtendBlockPrefix(&s.cur, PrefixWant(within), buf);
      Remember(&s, buf);
      return buf[within];
    }
    // Miss: claim the not-recently-used way (walk-order replacement — the
    // way serving the current walk's other endpoint stays resident) and
    // start a prefix covering exactly the requested index. Never a
    // speculative sweep past it: a block visited once pays i+1
    // batch-decoded varints and not one more (resumable extends make
    // rounding up pure waste on never-revisited blocks, which out-of-LLC
    // cold draws mostly are), and revisits extend from the saved stream
    // position at no re-walk cost.
    if (pool_ == nullptr) {
      stride_ = g.block_size();
      pool_ = scope_.AllocArray<NodeId>(kSlots * stride_);
    }
    const uint32_t w = 1u - recent_[set];
    Slot& s = ways[w];
    s.v = v;
    s.block = b;
    recent_[set] = static_cast<uint8_t>(w);
    ++decode_misses_;
    NodeId* buf = pool_ + (set * 2 + w) * stride_;
    StartPrefix(g, &s, within, buf);
    return buf[within];
  }

  // Prefix target for a draw at `within`: exactly the entries the draw
  // needs. Extensions resume from the saved stream position, so decoding
  // ahead buys nothing a later extend would not get at the same per-varint
  // price — and on blocks never revisited it is pure waste.
  static uint64_t PrefixWant(uint64_t within) { return within + 1; }

  void StartPrefix(const CompressedGraph& g, Slot* s, uint64_t within,
                   NodeId* buf) {
    const NodeId v = static_cast<NodeId>(s->v);
    // Sampled timing (1 in 64 starts): two clock reads per decode would
    // cost more than the decode itself on the miss path.
    if ((++decode_sampler_ & 63u) == 0) {
      Timer timer;
      g.DecodeBlockPrefix(v, s->block, PrefixWant(within), buf, &s->cur);
      DecodeLatencyUs()->Observe(timer.Seconds() * 1e6);
    } else {
      g.DecodeBlockPrefix(v, s->block, PrefixWant(within), buf, &s->cur);
    }
    Remember(s, buf);
  }

  void Remember(Slot* s, NodeId* buf) {
    mru_slot_ = s;
    mru_buf_ = buf;
  }

  static Histogram* DecodeLatencyUs() {
    // Microsecond buckets around the cost of one block-prefix start
    // (sampled 1 in 64).
    static Histogram* h = MetricsRegistry::Global().GetHistogram(
        "walk/decode_block_us", {0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 64.0});
    return h;
  }

  static constexpr uint32_t kLog2Sets = 6;  // 64 sets x 2 ways = 128 slots
  static constexpr uint64_t kSets = uint64_t{1} << kLog2Sets;
  static constexpr uint64_t kSlots = kSets * 2;
  static constexpr uint64_t kDirectWithin = 8;
  static constexpr uint64_t kNoVertex = ~uint64_t{0};

  Slot slots_[kSlots];
  uint8_t recent_[kSets] = {};  // most-recently-touched way per set
  const CompressedGraph::HubCache::Entry* FindHub(NodeId v) const {
    uint32_t s = CompressedGraph::HubCache::ProbeSlot(v, hub_mask_);
    for (;;) {
      const CompressedGraph::HubCache::Entry& e = hub_index_[s];
      if (e.key == static_cast<uint32_t>(v)) return &e;
      if (e.key == CompressedGraph::HubCache::kEmptyKey) return nullptr;
      s = (s + 1) & hub_mask_;
    }
  }

  // Pinned tier: hash index over the pinned hubs (HubCache::index()), its
  // power-of-two mask, the degree gate below which no vertex is pinned,
  // and the packed pool geometry.
  const CompressedGraph::HubCache::Entry* hub_index_ = nullptr;
  uint32_t hub_mask_ = 0;
  uint32_t hub_gate_ = 0;
  const uint8_t* pinned_pool_ = nullptr;  // HubCache::pool(), packed
  uint32_t pool_width_ = 4;
  uint32_t pool_mask_ = 0xffffffffu;
  uint64_t probe_v_ = kNoVertex;  // vertex of the memoized Degree() probe
  const CompressedGraph::HubCache::Entry* probe_e_ = nullptr;
  NodeId* pool_ = nullptr;  // kSlots * stride_, lazily from the arena
  uint64_t stride_ = 0;     // == graph block_size() once allocated
  Slot* mru_slot_ = nullptr;  // slot of the previous draw (walk-order path)
  const NodeId* mru_buf_ = nullptr;
  uint64_t pin_hits_ = 0;
  uint64_t cold_hits_ = 0;
  uint64_t decode_misses_ = 0;
  uint32_t decode_sampler_ = 0;  // counts prefix starts for sampled timing
  // Declared last so buffers outlive nothing in this object; reclaimed (for
  // reuse, not freed) when the context leaves worker scope.
  ScratchArena::Scope scope_;
};

}  // namespace lightne

#endif  // LIGHTNE_GRAPH_WALK_CURSOR_H_
