// Per-walk decode state threaded through the walk primitives.
//
// Random-walk steps resolve Neighbor(v, i): O(1) on raw CSR, but O(block)
// on the parallel-byte compressed format — every step of every walk
// re-decoded its block from scratch, which made the compressed sampler pay
// a varint tax the paper's time breakdown attributes to the sampling stage.
// WalkContext<G> is the representation-specific cursor a caller stack-
// allocates once per worker and passes down the walk call chain: for most
// graphs it is empty (zero-cost), for CompressedGraph it carries a
// DecodeCursor so repeated draws at the same vertex/block are served from
// the decoded prefix (amortized O(1), see CompressedGraph::DecodeCursor).
//
// Contract: WalkContext never touches the RNG and Neighbor() returns
// exactly g.Neighbor(v, i), so walks draw bit-identical endpoints with or
// without a context — it is purely a decode cache. A context must not
// outlive its graph and must always be used with the same graph.
#ifndef LIGHTNE_GRAPH_WALK_CURSOR_H_
#define LIGHTNE_GRAPH_WALK_CURSOR_H_

#include "graph/compressed.h"
#include "graph/graph_view.h"
#include "graph/types.h"

namespace lightne {

/// Default context: direct Neighbor access, no state.
template <typename G>
struct WalkContext {
  NodeId Neighbor(const G& g, NodeId v, uint64_t i) {
    return g.Neighbor(v, i);
  }
};

/// Compressed graphs carry a decode cursor per context.
template <>
struct WalkContext<CompressedGraph> {
  CompressedGraph::DecodeCursor cursor;

  NodeId Neighbor(const CompressedGraph& g, NodeId v, uint64_t i) {
    return cursor.Get(g, v, i);
  }
};

}  // namespace lightne

#endif  // LIGHTNE_GRAPH_WALK_CURSOR_H_
