#include "graph/compressed.h"

#include <algorithm>
#include <numeric>

#include "parallel/scan.h"
#include "parallel/sort.h"
#include "util/metrics.h"

namespace lightne {

CompressedGraph CompressedGraph::FromCsr(const CsrGraph& g,
                                         uint32_t block_size) {
  LIGHTNE_CHECK_GE(block_size, 1u);
  CompressedGraph cg;
  cg.num_vertices_ = g.NumVertices();
  cg.num_directed_edges_ = g.NumDirectedEdges();
  cg.block_size_ = block_size;
  const NodeId n = cg.num_vertices_;

  cg.degrees_.resize(n);
  ParallelFor(0, n, [&](uint64_t v) {
    cg.degrees_[v] = static_cast<NodeId>(g.Degree(static_cast<NodeId>(v)));
  });

  // Pass 1: per-vertex encoded sizes.
  cg.vertex_offset_.assign(static_cast<size_t>(n) + 1, 0);
  ParallelFor(
      0, n,
      [&](uint64_t vi) {
        const NodeId v = static_cast<NodeId>(vi);
        const uint64_t d = g.Degree(v);
        if (d == 0) return;
        const uint64_t nblocks = cg.NumBlocks(d);
        uint64_t bytes = 4 * (nblocks - 1);  // block offset table
        auto nbrs = g.Neighbors(v);
        for (uint64_t b = 0; b < nblocks; ++b) {
          const uint64_t lo = b * block_size;
          const uint64_t hi = std::min<uint64_t>(lo + block_size, d);
          bytes += VarintSize(Zigzag(static_cast<int64_t>(nbrs[lo]) -
                                     static_cast<int64_t>(v)));
          for (uint64_t i = lo + 1; i < hi; ++i) {
            bytes += VarintSize(nbrs[i] - nbrs[i - 1]);
          }
        }
        LIGHTNE_CHECK_MSG(bytes < (1ull << 32),
                          "per-vertex encoded region exceeds 4 GiB");
        cg.vertex_offset_[vi + 1] = bytes;
      },
      /*grain=*/256);

  // Scan to vertex offsets.
  std::vector<uint64_t> sizes(n);
  ParallelFor(0, n, [&](uint64_t v) { sizes[v] = cg.vertex_offset_[v + 1]; });
  ParallelScanExclusive(cg.vertex_offset_.data() + 1, n);
  ParallelFor(0, n,
              [&](uint64_t v) { cg.vertex_offset_[v + 1] += sizes[v]; });
  const uint64_t total_bytes = cg.vertex_offset_[n];
  cg.encoded_bytes_ = total_bytes;
  // Trailing slack keeps 16-byte SIMD loads in bounds even when a decode
  // starts at the stream's last byte (graph/varint_simd.h contract).
  cg.bytes_.resize(total_bytes + kVarintDecodeSlack);

  // Pass 2: encode in place.
  ParallelFor(
      0, n,
      [&](uint64_t vi) {
        const NodeId v = static_cast<NodeId>(vi);
        const uint64_t d = g.Degree(v);
        if (d == 0) return;
        const uint64_t nblocks = cg.NumBlocks(d);
        uint8_t* region = cg.bytes_.data() + cg.vertex_offset_[vi];
        uint8_t* p = region + 4 * (nblocks - 1);
        auto nbrs = g.Neighbors(v);
        for (uint64_t b = 0; b < nblocks; ++b) {
          if (b > 0) {
            const uint32_t off = static_cast<uint32_t>(p - region);
            std::memcpy(region + 4 * (b - 1), &off, 4);
          }
          const uint64_t lo = b * block_size;
          const uint64_t hi = std::min<uint64_t>(lo + block_size, d);
          EncodeVarint(
              Zigzag(static_cast<int64_t>(nbrs[lo]) - static_cast<int64_t>(v)),
              &p);
          for (uint64_t i = lo + 1; i < hi; ++i) {
            EncodeVarint(nbrs[i] - nbrs[i - 1], &p);
          }
        }
        LIGHTNE_CHECK_EQ(static_cast<uint64_t>(p - region),
                         cg.vertex_offset_[vi + 1] - cg.vertex_offset_[vi]);
      },
      /*grain=*/256);
  return cg;
}

uint64_t CompressedGraph::DecodeBlock(NodeId v, uint64_t b, NodeId* out) const {
  BlockCursor cur;
  DecodeBlockPrefix(v, b, ~uint64_t{0}, out, &cur);
  return cur.len;
}

uint64_t CompressedGraph::DecodeBlockPrefix(NodeId v, uint64_t b,
                                            uint64_t upto, NodeId* out,
                                            BlockCursor* cur) const {
  const uint64_t d = degrees_[v];
  const uint64_t nblocks = NumBlocks(d);
  LIGHTNE_CHECK_LT(b, nblocks);
  const uint8_t* p = BlockBytes(v, b);
  const uint64_t in_block =
      (b + 1 < nblocks) ? block_size_ : d - b * block_size_;
  const int64_t running = static_cast<int64_t>(v) + DecodeZigzag(&p);
  out[0] = static_cast<NodeId>(running);
  cur->next = p;
  cur->running = running;
  cur->decoded = 1;
  cur->len = static_cast<uint32_t>(in_block);
  ExtendBlockPrefix(cur, upto, out);
  return cur->decoded;
}

void CompressedGraph::ExtendBlockPrefix(BlockCursor* cur, uint64_t upto,
                                        NodeId* out) const {
  const uint64_t want = std::min<uint64_t>(upto, cur->len);
  if (want <= cur->decoded) return;
  // Fused difference-decode through the dispatched backend: varint decode
  // and prefix sum in one pass, no staging buffer. Every decoded value is a
  // node id (< NumVertices), so the uint32 accumulation the fused decoders
  // use agrees exactly with the old int64 sweep, under every backend.
  uint32_t base = static_cast<uint32_t>(cur->running);
  cur->next = ActiveDeltaPrefixDecoder()(cur->next, want - cur->decoded,
                                         &base, out + cur->decoded);
  cur->running = static_cast<int64_t>(base);
  cur->decoded = static_cast<uint32_t>(want);
}

CompressedGraph::HubCache CompressedGraph::HubCache::Build(
    const CompressedGraph& g, uint64_t byte_budget, MemoryBudget* budget) {
  HubCache cache;
  const NodeId n = g.NumVertices();
  if (n == 0 || byte_budget == 0) return cache;
  uint64_t effective = byte_budget;
  if (budget != nullptr && budget->limited()) {
    // An accelerator must never starve the sparsifier hash table: under a
    // limited governor, spend at most a quarter of what is still available.
    effective = std::min(effective, budget->available_bytes() / 4);
  }
  // Admission order: (degree desc, id asc) — a pure function of the graph,
  // so the pinned set is deterministic for a fixed budget.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  ParallelSort(order.data(), order.size(), [&](NodeId a, NodeId b) {
    const uint64_t da = g.Degree(a), db = g.Degree(b);
    return da != db ? da > db : a < b;
  });

  // Block-granular knapsack. Under the walk's stationary distribution every
  // decoded entry has the same expected hit rate (visit prob ∝ degree, draw
  // uniform within the row), so the objective is simply to pin as many
  // entries as fit: each vertex takes its whole row if it fits the
  // remaining budget, else its largest block-aligned prefix (blocks decode
  // independently, so a prefix needs no tail re-decode), and the scan
  // continues past giant hubs so smaller rows can fill the remainder. The
  // index is sized dynamically: admitting a vertex may double the hash
  // table (load factor capped at 1/2), so each candidate is charged against
  // the entry capacity left once the index it would need is paid for.
  const auto slots_for = [](uint64_t pinned_vertices) {
    uint64_t s = 8;
    while (s < 2 * pinned_vertices) s <<= 1;
    return s;
  };
  // Pool entries pack at 3 bytes when every node id fits 24 bits — the
  // same budget then holds a third more entries, and entries fraction is
  // exactly the pin hit rate under the walk's stationary distribution.
  const uint32_t width = n <= (NodeId{1} << 24) ? 3 : 4;
  const uint64_t bs = g.block_size_;
  std::vector<uint32_t> take(n, 0);
  uint64_t entries = 0;
  uint64_t pinned = 0;
  uint32_t gate = kEmptyKey;
  for (NodeId idx = 0; idx < n; ++idx) {
    const NodeId v = order[idx];
    const uint64_t d = g.Degree(v);
    if (d == 0) break;  // degree-sorted: nothing left worth pinning
    const uint64_t idx_bytes = slots_for(pinned + 1) * sizeof(Entry);
    if (idx_bytes >= effective) break;
    // uint32 pool offsets bound the pool at 4 Gi entries.
    const uint64_t cap =
        std::min<uint64_t>((effective - idx_bytes) / width, UINT32_MAX);
    if (cap <= entries) break;  // no room for another vertex's index + data
    const uint64_t rem = cap - entries;
    const uint64_t t = d <= rem ? d : bs * (rem / bs);
    if (t == 0) continue;  // row larger than the tail budget; keep scanning
    take[v] = static_cast<uint32_t>(t);
    entries += t;
    ++pinned;
    gate = std::min(gate, static_cast<uint32_t>(d));
  }
  if (entries == 0) return cache;

  const uint64_t slots = slots_for(pinned);
  const uint64_t bytes = slots * sizeof(Entry) + entries * width;
  BudgetReservation reservation(budget, bytes);
  if (!reservation.ok()) return cache;  // governor raced below the cap

  // Insert in vertex-id order: both the pool packing and the probe-chain
  // layout are then pure functions of the admitted set, so rebuilds are
  // bit-identical.
  cache.index_.assign(slots, Entry{});
  cache.idx_mask_ = static_cast<uint32_t>(slots - 1);
  cache.gate_ = gate;
  cache.pool_width_ = width;
  cache.pool_mask_ = width == 3 ? 0xffffffu : 0xffffffffu;
  std::vector<NodeId> pinned_ids;
  std::vector<uint64_t> pinned_off;
  pinned_ids.reserve(pinned);
  pinned_off.reserve(pinned);
  uint64_t off = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (take[v] == 0) continue;
    uint32_t s = ProbeSlot(v, cache.idx_mask_);
    while (cache.index_[s].key != kEmptyKey) s = (s + 1) & cache.idx_mask_;
    cache.index_[s] =
        Entry{static_cast<uint32_t>(v), static_cast<uint32_t>(off), take[v],
              static_cast<uint32_t>(g.Degree(v))};
    pinned_ids.push_back(v);
    pinned_off.push_back(off);
    off += take[v];
  }
  cache.pool_.assign(entries * width + kPoolSlack, 0);
  ParallelFor(0, pinned_ids.size(), [&](uint64_t j) {
    const NodeId v = pinned_ids[j];
    const uint64_t t = take[v];
    uint8_t* out = cache.pool_.data() + pinned_off[j] * width;
    // The prefix is block-aligned or the whole row, so it decomposes into
    // leading blocks of the row; decode each block to a scratch row and
    // pack it little-endian at the entry width (only a whole-row tail
    // block holds fewer than bs entries). Packing writes exactly `width`
    // bytes per entry: a wider store would race the neighboring row's
    // first byte under the parallel fill.
    std::vector<NodeId> tmp(bs);
    const uint64_t nb = (t + bs - 1) / bs;
    for (uint64_t b = 0; b < nb; ++b) {
      const uint64_t len = std::min<uint64_t>(bs, t - b * bs);
      g.DecodeBlock(v, b, tmp.data());
      uint8_t* dst = out + b * bs * width;
      for (uint64_t k = 0; k < len; ++k) {
        const uint32_t val = tmp[k];
        std::memcpy(dst + k * width, &val, width);
      }
    }
  });
  cache.pinned_entries_ = entries;
  cache.pinned_vertices_ = pinned;
  cache.pinned_bytes_ = bytes;
  cache.reservation_ = std::move(reservation);
  MetricsRegistry& m = MetricsRegistry::Global();
  m.GetGauge("walk/pinned_bytes")->Set(bytes);
  m.GetGauge("walk/pinned_vertices")->Set(pinned);
  m.GetGauge("walk/pinned_entries")->Set(entries);
  return cache;
}

NodeId CompressedGraph::Neighbor(NodeId v, uint64_t i) const {
  const uint64_t d = degrees_[v];
  LIGHTNE_CHECK_LT(i, d);
  const uint8_t* region = bytes_.data() + vertex_offset_[v];
  const uint64_t nblocks = NumBlocks(d);
  const uint64_t b = i / block_size_;
  const uint8_t* p = region + BlockStart(region, nblocks, b);
  int64_t running = static_cast<int64_t>(v) + DecodeZigzag(&p);
  const uint64_t within = i - b * block_size_;
  for (uint64_t k = 0; k < within; ++k) {
    running += static_cast<int64_t>(DecodeVarint(&p));
  }
  return static_cast<NodeId>(running);
}

}  // namespace lightne
