#include "graph/compressed.h"

#include <algorithm>
#include <numeric>

#include "parallel/scan.h"
#include "parallel/sort.h"
#include "util/metrics.h"

namespace lightne {

CompressedGraph CompressedGraph::FromCsr(const CsrGraph& g,
                                         uint32_t block_size) {
  LIGHTNE_CHECK_GE(block_size, 1u);
  CompressedGraph cg;
  cg.num_vertices_ = g.NumVertices();
  cg.num_directed_edges_ = g.NumDirectedEdges();
  cg.block_size_ = block_size;
  const NodeId n = cg.num_vertices_;

  cg.degrees_.resize(n);
  ParallelFor(0, n, [&](uint64_t v) {
    cg.degrees_[v] = static_cast<NodeId>(g.Degree(static_cast<NodeId>(v)));
  });

  // Pass 1: per-vertex encoded sizes.
  cg.vertex_offset_.assign(static_cast<size_t>(n) + 1, 0);
  ParallelFor(
      0, n,
      [&](uint64_t vi) {
        const NodeId v = static_cast<NodeId>(vi);
        const uint64_t d = g.Degree(v);
        if (d == 0) return;
        const uint64_t nblocks = cg.NumBlocks(d);
        uint64_t bytes = 4 * (nblocks - 1);  // block offset table
        auto nbrs = g.Neighbors(v);
        for (uint64_t b = 0; b < nblocks; ++b) {
          const uint64_t lo = b * block_size;
          const uint64_t hi = std::min<uint64_t>(lo + block_size, d);
          bytes += VarintSize(Zigzag(static_cast<int64_t>(nbrs[lo]) -
                                     static_cast<int64_t>(v)));
          for (uint64_t i = lo + 1; i < hi; ++i) {
            bytes += VarintSize(nbrs[i] - nbrs[i - 1]);
          }
        }
        LIGHTNE_CHECK_MSG(bytes < (1ull << 32),
                          "per-vertex encoded region exceeds 4 GiB");
        cg.vertex_offset_[vi + 1] = bytes;
      },
      /*grain=*/256);

  // Scan to vertex offsets.
  std::vector<uint64_t> sizes(n);
  ParallelFor(0, n, [&](uint64_t v) { sizes[v] = cg.vertex_offset_[v + 1]; });
  ParallelScanExclusive(cg.vertex_offset_.data() + 1, n);
  ParallelFor(0, n,
              [&](uint64_t v) { cg.vertex_offset_[v + 1] += sizes[v]; });
  const uint64_t total_bytes = cg.vertex_offset_[n];
  cg.bytes_.resize(total_bytes);

  // Pass 2: encode in place.
  ParallelFor(
      0, n,
      [&](uint64_t vi) {
        const NodeId v = static_cast<NodeId>(vi);
        const uint64_t d = g.Degree(v);
        if (d == 0) return;
        const uint64_t nblocks = cg.NumBlocks(d);
        uint8_t* region = cg.bytes_.data() + cg.vertex_offset_[vi];
        uint8_t* p = region + 4 * (nblocks - 1);
        auto nbrs = g.Neighbors(v);
        for (uint64_t b = 0; b < nblocks; ++b) {
          if (b > 0) {
            const uint32_t off = static_cast<uint32_t>(p - region);
            std::memcpy(region + 4 * (b - 1), &off, 4);
          }
          const uint64_t lo = b * block_size;
          const uint64_t hi = std::min<uint64_t>(lo + block_size, d);
          EncodeVarint(
              Zigzag(static_cast<int64_t>(nbrs[lo]) - static_cast<int64_t>(v)),
              &p);
          for (uint64_t i = lo + 1; i < hi; ++i) {
            EncodeVarint(nbrs[i] - nbrs[i - 1], &p);
          }
        }
        LIGHTNE_CHECK_EQ(static_cast<uint64_t>(p - region),
                         cg.vertex_offset_[vi + 1] - cg.vertex_offset_[vi]);
      },
      /*grain=*/256);
  return cg;
}

NodeId CompressedGraph::DecodeCursor::Get(const CompressedGraph& g, NodeId v,
                                          uint64_t i) {
  const uint64_t d = g.degrees_[v];
  LIGHTNE_CHECK_LT(i, d);
  const uint64_t b = i / g.block_size_;
  const uint64_t within = i - b * g.block_size_;
  // A draw's decode cost is proportional to `within`: cheap draws (the bulk
  // on an avg-degree graph) cost fewer cycles than a cache probe, so they
  // decode inline without touching — or evicting — any entry.
  if (within <= kDirectWithin) {
    return g.Neighbor(v, i);
  }
  // Direct-mapped slot for (v, b). Multiplicative mix on the packed key;
  // taking high bits keeps distinct blocks of the same hub from colliding.
  const uint64_t key = (static_cast<uint64_t>(v) << 20) ^ b;
  Entry& e = entries_[(key * 0x9E3779B97F4A7C15ull) >> (64 - kLog2Entries)];
  if (v == e.v && b == e.block && within < e.filled) {
    ++hits_;
    return e.buf[within];
  }
  ++misses_;
  if (v != e.v || b != e.block) {
    // Evict whatever lived here and anchor on the requested block; the
    // decoded prefix restarts empty.
    const uint8_t* region = g.bytes_.data() + g.vertex_offset_[v];
    e.next = region + BlockStart(region, g.NumBlocks(d), b);
    e.v = v;
    e.block = b;
    e.filled = 0;
    if (e.buf.size() < g.block_size_) e.buf.resize(g.block_size_);
  }
  decoded_varints_ += within + 1 - e.filled;
  // Locals keep the decode loop in registers; the byte-stream reads would
  // otherwise force the entry fields back to memory every iteration.
  uint64_t filled = e.filled;
  int64_t running = e.running;
  const uint8_t* p = e.next;
  NodeId* buf = e.buf.data();
  if (filled == 0) {
    running = static_cast<int64_t>(v) + DecodeZigzag(&p);
    buf[filled++] = static_cast<NodeId>(running);
  }
  while (filled <= within) {
    running += static_cast<int64_t>(DecodeVarint(&p));
    buf[filled++] = static_cast<NodeId>(running);
  }
  e.filled = filled;
  e.running = running;
  e.next = p;
  return buf[within];
}

uint64_t CompressedGraph::DecodeBlock(NodeId v, uint64_t b, NodeId* out) const {
  const uint64_t d = degrees_[v];
  const uint64_t nblocks = NumBlocks(d);
  LIGHTNE_CHECK_LT(b, nblocks);
  const uint8_t* region = bytes_.data() + vertex_offset_[v];
  const uint8_t* p = region + BlockStart(region, nblocks, b);
  const uint64_t in_block =
      (b + 1 < nblocks) ? block_size_ : d - b * block_size_;
  int64_t running = static_cast<int64_t>(v) + DecodeZigzag(&p);
  out[0] = static_cast<NodeId>(running);
  for (uint64_t k = 1; k < in_block; ++k) {
    running += static_cast<int64_t>(DecodeVarint(&p));
    out[k] = static_cast<NodeId>(running);
  }
  return in_block;
}

CompressedGraph::HubCache CompressedGraph::HubCache::Build(
    const CompressedGraph& g, uint64_t byte_budget, MemoryBudget* budget) {
  HubCache cache;
  const NodeId n = g.NumVertices();
  if (n == 0 || byte_budget == 0) return cache;
  uint64_t effective = byte_budget;
  if (budget != nullptr && budget->limited()) {
    // An accelerator must never starve the sparsifier hash table: under a
    // limited governor, spend at most a quarter of what is still available.
    effective = std::min(effective, budget->available_bytes() / 4);
  }
  const uint64_t index_bytes =
      static_cast<uint64_t>(n) * sizeof(const NodeId*);
  if (index_bytes >= effective) return cache;

  // Pin order: (degree desc, id asc) — a pure function of the graph, so the
  // pinned set is deterministic for a fixed budget.
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  ParallelSort(order.data(), order.size(), [&](NodeId a, NodeId b) {
    const uint64_t da = g.Degree(a), db = g.Degree(b);
    return da != db ? da > db : a < b;
  });

  uint64_t bytes = index_bytes;
  uint64_t entries = 0;
  uint64_t pinned = 0;
  std::vector<uint64_t> row_offset;
  for (; pinned < n; ++pinned) {
    const uint64_t d = g.Degree(order[pinned]);
    if (d == 0) break;  // degree-sorted: nothing left worth pinning
    const uint64_t row_bytes = d * sizeof(NodeId);
    if (bytes + row_bytes > effective) break;
    row_offset.push_back(entries);
    bytes += row_bytes;
    entries += d;
  }
  if (pinned == 0) return cache;

  BudgetReservation reservation(budget, bytes);
  if (!reservation.ok()) return cache;  // governor raced below the cap
  cache.pool_.resize(entries);
  cache.rows_.assign(n, nullptr);
  ParallelFor(0, pinned, [&](uint64_t j) {
    const NodeId v = order[j];
    NodeId* out = cache.pool_.data() + row_offset[j];
    uint64_t k = 0;
    g.MapNeighbors(v, [&](NodeId u) { out[k++] = u; });
    cache.rows_[v] = out;
  });
  cache.pinned_vertices_ = pinned;
  cache.pinned_bytes_ = bytes;
  cache.reservation_ = std::move(reservation);
  MetricsRegistry& m = MetricsRegistry::Global();
  m.GetGauge("walk/pinned_bytes")->Set(bytes);
  m.GetGauge("walk/pinned_vertices")->Set(pinned);
  return cache;
}

NodeId CompressedGraph::Neighbor(NodeId v, uint64_t i) const {
  const uint64_t d = degrees_[v];
  LIGHTNE_CHECK_LT(i, d);
  const uint8_t* region = bytes_.data() + vertex_offset_[v];
  const uint64_t nblocks = NumBlocks(d);
  const uint64_t b = i / block_size_;
  const uint8_t* p = region + BlockStart(region, nblocks, b);
  int64_t running = static_cast<int64_t>(v) + DecodeZigzag(&p);
  const uint64_t within = i - b * block_size_;
  for (uint64_t k = 0; k < within; ++k) {
    running += static_cast<int64_t>(DecodeVarint(&p));
  }
  return static_cast<NodeId>(running);
}

}  // namespace lightne
