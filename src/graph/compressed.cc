#include "graph/compressed.h"

#include "parallel/scan.h"

namespace lightne {

CompressedGraph CompressedGraph::FromCsr(const CsrGraph& g,
                                         uint32_t block_size) {
  LIGHTNE_CHECK_GE(block_size, 1u);
  CompressedGraph cg;
  cg.num_vertices_ = g.NumVertices();
  cg.num_directed_edges_ = g.NumDirectedEdges();
  cg.block_size_ = block_size;
  const NodeId n = cg.num_vertices_;

  cg.degrees_.resize(n);
  ParallelFor(0, n, [&](uint64_t v) {
    cg.degrees_[v] = static_cast<NodeId>(g.Degree(static_cast<NodeId>(v)));
  });

  // Pass 1: per-vertex encoded sizes.
  cg.vertex_offset_.assign(static_cast<size_t>(n) + 1, 0);
  ParallelFor(
      0, n,
      [&](uint64_t vi) {
        const NodeId v = static_cast<NodeId>(vi);
        const uint64_t d = g.Degree(v);
        if (d == 0) return;
        const uint64_t nblocks = cg.NumBlocks(d);
        uint64_t bytes = 4 * (nblocks - 1);  // block offset table
        auto nbrs = g.Neighbors(v);
        for (uint64_t b = 0; b < nblocks; ++b) {
          const uint64_t lo = b * block_size;
          const uint64_t hi = std::min<uint64_t>(lo + block_size, d);
          bytes += VarintSize(Zigzag(static_cast<int64_t>(nbrs[lo]) -
                                     static_cast<int64_t>(v)));
          for (uint64_t i = lo + 1; i < hi; ++i) {
            bytes += VarintSize(nbrs[i] - nbrs[i - 1]);
          }
        }
        LIGHTNE_CHECK_MSG(bytes < (1ull << 32),
                          "per-vertex encoded region exceeds 4 GiB");
        cg.vertex_offset_[vi + 1] = bytes;
      },
      /*grain=*/256);

  // Scan to vertex offsets.
  std::vector<uint64_t> sizes(n);
  ParallelFor(0, n, [&](uint64_t v) { sizes[v] = cg.vertex_offset_[v + 1]; });
  ParallelScanExclusive(cg.vertex_offset_.data() + 1, n);
  ParallelFor(0, n,
              [&](uint64_t v) { cg.vertex_offset_[v + 1] += sizes[v]; });
  const uint64_t total_bytes = cg.vertex_offset_[n];
  cg.bytes_.resize(total_bytes);

  // Pass 2: encode in place.
  ParallelFor(
      0, n,
      [&](uint64_t vi) {
        const NodeId v = static_cast<NodeId>(vi);
        const uint64_t d = g.Degree(v);
        if (d == 0) return;
        const uint64_t nblocks = cg.NumBlocks(d);
        uint8_t* region = cg.bytes_.data() + cg.vertex_offset_[vi];
        uint8_t* p = region + 4 * (nblocks - 1);
        auto nbrs = g.Neighbors(v);
        for (uint64_t b = 0; b < nblocks; ++b) {
          if (b > 0) {
            const uint32_t off = static_cast<uint32_t>(p - region);
            std::memcpy(region + 4 * (b - 1), &off, 4);
          }
          const uint64_t lo = b * block_size;
          const uint64_t hi = std::min<uint64_t>(lo + block_size, d);
          EncodeVarint(
              Zigzag(static_cast<int64_t>(nbrs[lo]) - static_cast<int64_t>(v)),
              &p);
          for (uint64_t i = lo + 1; i < hi; ++i) {
            EncodeVarint(nbrs[i] - nbrs[i - 1], &p);
          }
        }
        LIGHTNE_CHECK_EQ(static_cast<uint64_t>(p - region),
                         cg.vertex_offset_[vi + 1] - cg.vertex_offset_[vi]);
      },
      /*grain=*/256);
  return cg;
}

NodeId CompressedGraph::Neighbor(NodeId v, uint64_t i) const {
  const uint64_t d = degrees_[v];
  LIGHTNE_CHECK_LT(i, d);
  const uint8_t* region = bytes_.data() + vertex_offset_[v];
  const uint64_t nblocks = NumBlocks(d);
  const uint64_t b = i / block_size_;
  const uint8_t* p = region + BlockStart(region, nblocks, b);
  int64_t running = static_cast<int64_t>(v) + DecodeZigzag(&p);
  const uint64_t within = i - b * block_size_;
  for (uint64_t k = 0; k < within; ++k) {
    running += static_cast<int64_t>(DecodeVarint(&p));
  }
  return static_cast<NodeId>(running);
}

}  // namespace lightne
