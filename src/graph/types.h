// Fundamental graph types. Vertex ids are 32-bit (the paper's largest graph
// has 1.7B vertices; ours fit comfortably), edge counts are 64-bit.
#ifndef LIGHTNE_GRAPH_TYPES_H_
#define LIGHTNE_GRAPH_TYPES_H_

#include <cstdint>

namespace lightne {

using NodeId = uint32_t;
using EdgeId = uint64_t;

/// An (ordered) vertex pair packed into one 64-bit key — the key type of the
/// sparsifier hash table.
inline uint64_t PackEdge(NodeId u, NodeId v) {
  return (static_cast<uint64_t>(u) << 32) | static_cast<uint64_t>(v);
}

inline NodeId PackedSrc(uint64_t key) {
  return static_cast<NodeId>(key >> 32);
}

inline NodeId PackedDst(uint64_t key) {
  return static_cast<NodeId>(key & 0xffffffffull);
}

}  // namespace lightne

#endif  // LIGHTNE_GRAPH_TYPES_H_
