#include "graph/varint_simd.h"

#include <atomic>
#include <cstdlib>

#if (defined(__x86_64__) || defined(__i386__)) && \
    !defined(LIGHTNE_FORCE_SCALAR_DECODE)
#define LIGHTNE_VARINT_SIMD_ARMS 1
#include <immintrin.h>
#else
#define LIGHTNE_VARINT_SIMD_ARMS 0
#endif

namespace lightne {

namespace {

// Decodes one LEB128 varint; shared tail/fallback for every arm, so all
// arms agree byte-for-byte with CompressedGraph's inline DecodeVarint.
inline uint64_t DecodeOne(const uint8_t** p) {
  uint64_t out = 0;
  int shift = 0;
  for (;;) {
    const uint8_t byte = *(*p)++;
    out |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return out;
}

}  // namespace

const uint8_t* DecodeVarintBatchScalar(const uint8_t* p, uint64_t count,
                                       uint64_t* out) {
  for (uint64_t k = 0; k < count; ++k) out[k] = DecodeOne(&p);
  return p;
}

const uint8_t* DecodeDeltaPrefixScalar(const uint8_t* p, uint64_t count,
                                       uint32_t* base_io, uint32_t* out) {
  // uint32 accumulation (mod 2^32) is the reference semantics: the SIMD
  // arms sum with paddd, so wraparound must match lane arithmetic exactly.
  uint32_t base = *base_io;
  for (uint64_t k = 0; k < count; ++k) {
    base += static_cast<uint32_t>(DecodeOne(&p));
    out[k] = base;
  }
  *base_io = base;
  return p;
}

#if LIGHTNE_VARINT_SIMD_ARMS

namespace {

// Shuffle table keyed on the low 8 continuation bits of a 16-byte load.
// A valid entry decodes the next FOUR varints, each 1 or 2 bytes wide, in
// one pshufb: lane j gathers [first byte, second byte or zero] of varint j
// into a u32. consumed == 0 marks patterns with a >=3-byte varint (or one
// straddling byte 7, whose width bit lies outside the table key); the
// caller scalar-decodes one varint and retries.
struct ShufEntry {
  alignas(16) uint8_t shuffle[16];
  uint8_t consumed;  // total input bytes for 4 varints; 0 = invalid
};

struct ShufTable {
  ShufEntry entries[256];
};

constexpr ShufTable BuildShufTable() {
  ShufTable t{};
  for (int m = 0; m < 256; ++m) {
    ShufEntry& e = t.entries[m];
    for (int i = 0; i < 16; ++i) e.shuffle[i] = 0x80;  // pshufb: zero lane
    int pos = 0;
    int nv = 0;
    bool ok = true;
    while (nv < 4) {
      if (pos >= 8) {
        ok = false;
        break;
      }
      if (((m >> pos) & 1) == 0) {  // 1-byte varint
        e.shuffle[nv * 4] = static_cast<uint8_t>(pos);
        pos += 1;
      } else if (pos + 1 < 8 && ((m >> (pos + 1)) & 1) == 0) {  // 2-byte
        e.shuffle[nv * 4] = static_cast<uint8_t>(pos);
        e.shuffle[nv * 4 + 1] = static_cast<uint8_t>(pos + 1);
        pos += 2;
      } else {  // >=3 bytes, or width undecidable from the low 8 bits
        ok = false;
        break;
      }
      ++nv;
    }
    e.consumed = ok ? static_cast<uint8_t>(pos) : 0;
  }
  return t;
}

constexpr ShufTable kShufTable = BuildShufTable();

// Core of both SIMD arms. Carries the ssse3 target itself (the intrinsics
// below need it) and is marked always_inline; it may inline into any caller
// whose target is a superset, so the avx2 arm reuses the body under VEX
// codegen while the ssse3 arm compiles it as-is.
__attribute__((target("ssse3"), always_inline)) inline const uint8_t*
DecodeBatchSse(
    const uint8_t* p, uint64_t count, uint64_t* out) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i lo7 = _mm_set1_epi32(0x7f);
  const __m128i hi7 = _mm_set1_epi32(0x7f00);
  uint64_t k = 0;
  while (k + 4 <= count) {
    const __m128i chunk = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const uint32_t mask =
        static_cast<uint32_t>(_mm_movemask_epi8(chunk)) & 0xffu;
    if (mask == 0 && k + 8 <= count) {
      // Eight one-byte varints: widen bytes 0..7 straight to u64 lanes.
      const __m128i b16 = _mm_unpacklo_epi8(chunk, zero);   // 8 x u16
      const __m128i w0 = _mm_unpacklo_epi16(b16, zero);     // 4 x u32
      const __m128i w1 = _mm_unpackhi_epi16(b16, zero);     // 4 x u32
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + k),
                       _mm_unpacklo_epi32(w0, zero));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + k + 2),
                       _mm_unpackhi_epi32(w0, zero));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + k + 4),
                       _mm_unpacklo_epi32(w1, zero));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + k + 6),
                       _mm_unpackhi_epi32(w1, zero));
      p += 8;
      k += 8;
      continue;
    }
    const ShufEntry& e = kShufTable.entries[mask];
    if (e.consumed != 0) {
      // Four varints of width <= 2: gather bytes into u32 lanes, then
      // value = (b0 & 0x7f) | ((b1 & 0x7f) << 7).
      const __m128i shuf =
          _mm_load_si128(reinterpret_cast<const __m128i*>(e.shuffle));
      const __m128i lanes = _mm_shuffle_epi8(chunk, shuf);
      const __m128i val = _mm_or_si128(_mm_and_si128(lanes, lo7),
                                       _mm_srli_epi32(_mm_and_si128(lanes, hi7), 1));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + k),
                       _mm_unpacklo_epi32(val, zero));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + k + 2),
                       _mm_unpackhi_epi32(val, zero));
      p += e.consumed;
      k += 4;
      continue;
    }
    // Long (or table-straddling) varint at the front: scalar-decode just it.
    out[k++] = DecodeOne(&p);
  }
  while (k < count) out[k++] = DecodeOne(&p);
  return p;
}

// Fused difference-decode core: the same 4-varint shuffle-table step, plus
// an in-register inclusive prefix sum (two lane shifts + adds) and a lane-3
// carry broadcast (_mm_shuffle_epi32, SSE2 — no SSE4.1 extract needed), so
// the running sum never leaves the register file between iterations. No
// 8-wide special case: the mask==0 table entry already decodes four 1-byte
// varints, and a second branch in the loop costs more in mispredicts than
// the wider unpack saves (measured on hub-shaped delta mixes).
__attribute__((target("ssse3"), always_inline)) inline const uint8_t*
DecodeDeltaPrefixSse(const uint8_t* p, uint64_t count, uint32_t* base_io,
                     uint32_t* out) {
  const __m128i lo7 = _mm_set1_epi32(0x7f);
  const __m128i hi7 = _mm_set1_epi32(0x7f00);
  __m128i carry = _mm_set1_epi32(static_cast<int>(*base_io));
  uint64_t k = 0;
  while (k + 4 <= count) {
    const __m128i chunk = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const uint32_t mask =
        static_cast<uint32_t>(_mm_movemask_epi8(chunk)) & 0xffu;
    const ShufEntry& e = kShufTable.entries[mask];
    if (e.consumed != 0) {
      const __m128i shuf =
          _mm_load_si128(reinterpret_cast<const __m128i*>(e.shuffle));
      const __m128i lanes = _mm_shuffle_epi8(chunk, shuf);
      __m128i val = _mm_or_si128(_mm_and_si128(lanes, lo7),
                                 _mm_srli_epi32(_mm_and_si128(lanes, hi7), 1));
      // Inclusive prefix sum across the 4 lanes, then add the carried base.
      val = _mm_add_epi32(val, _mm_slli_si128(val, 4));
      val = _mm_add_epi32(val, _mm_slli_si128(val, 8));
      val = _mm_add_epi32(val, carry);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + k), val);
      carry = _mm_shuffle_epi32(val, 0xff);  // broadcast lane 3
      p += e.consumed;
      k += 4;
      continue;
    }
    // Long varint at the front: scalar-decode it and re-broadcast the base.
    const uint32_t base =
        static_cast<uint32_t>(_mm_cvtsi128_si32(carry)) +
        static_cast<uint32_t>(DecodeOne(&p));
    out[k++] = base;
    carry = _mm_set1_epi32(static_cast<int>(base));
  }
  uint32_t base = static_cast<uint32_t>(_mm_cvtsi128_si32(carry));
  while (k < count) {
    base += static_cast<uint32_t>(DecodeOne(&p));
    out[k++] = base;
  }
  *base_io = base;
  return p;
}

__attribute__((target("ssse3"))) const uint8_t* DecodeVarintBatchSsse3(
    const uint8_t* p, uint64_t count, uint64_t* out) {
  return DecodeBatchSse(p, count, out);
}

__attribute__((target("ssse3"))) const uint8_t* DecodeDeltaPrefixSsse3(
    const uint8_t* p, uint64_t count, uint32_t* base_io, uint32_t* out) {
  return DecodeDeltaPrefixSse(p, count, base_io, out);
}

__attribute__((target("avx2"))) const uint8_t* DecodeDeltaPrefixAvx2(
    const uint8_t* p, uint64_t count, uint32_t* base_io, uint32_t* out) {
  // The carry chain serializes iterations anyway; the win over the ssse3
  // arm is VEX codegen of the same body.
  return DecodeDeltaPrefixSse(p, count, base_io, out);
}

__attribute__((target("avx2"))) const uint8_t* DecodeVarintBatchAvx2(
    const uint8_t* p, uint64_t count, uint64_t* out) {
  // Same algorithm; the avx2 target lets the compiler use VEX encodings and
  // adds a 16-wide all-one-byte fast path on top.
  uint64_t k = 0;
  while (k + 16 <= count) {
    const __m128i chunk = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    const uint32_t mask = static_cast<uint32_t>(_mm_movemask_epi8(chunk));
    if (mask != 0) break;
    // Sixteen one-byte varints: four 4-lane zero-extensions to u64.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k),
                        _mm256_cvtepu8_epi64(chunk));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k + 4),
                        _mm256_cvtepu8_epi64(_mm_srli_si128(chunk, 4)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k + 8),
                        _mm256_cvtepu8_epi64(_mm_srli_si128(chunk, 8)));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k + 12),
                        _mm256_cvtepu8_epi64(_mm_srli_si128(chunk, 12)));
    p += 16;
    k += 16;
  }
  return DecodeBatchSse(p, count - k, out + k);
}

}  // namespace

#endif  // LIGHTNE_VARINT_SIMD_ARMS

namespace {

struct BackendDesc {
  VarintBatchFn fn;
  VarintDeltaPrefixFn delta_prefix;
  const char* name;
  bool simd;
};

constexpr BackendDesc kScalarDesc{&DecodeVarintBatchScalar,
                                  &DecodeDeltaPrefixScalar, "scalar", false};

const BackendDesc* BestSimdDesc() {
#if LIGHTNE_VARINT_SIMD_ARMS
  static const BackendDesc kAvx2Desc{&DecodeVarintBatchAvx2,
                                     &DecodeDeltaPrefixAvx2, "avx2", true};
  static const BackendDesc kSsse3Desc{&DecodeVarintBatchSsse3,
                                      &DecodeDeltaPrefixSsse3, "ssse3", true};
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return &kAvx2Desc;
  if (__builtin_cpu_supports("ssse3")) return &kSsse3Desc;
#endif
  return nullptr;
}

const BackendDesc* Resolve(VarintBackend backend) {
  if (backend == VarintBackend::kScalar) return &kScalarDesc;
  if (backend == VarintBackend::kAuto) {
    const char* env = std::getenv("LIGHTNE_FORCE_SCALAR_DECODE");
    if (env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0')) {
      return &kScalarDesc;
    }
  }
  const BackendDesc* simd = BestSimdDesc();
  return simd != nullptr ? simd : &kScalarDesc;
}

std::atomic<const BackendDesc*> g_backend{nullptr};

const BackendDesc* ActiveDesc() {
  const BackendDesc* d = g_backend.load(std::memory_order_relaxed);
  if (d == nullptr) {
    // Benign race: concurrent first calls resolve to the same descriptor.
    d = Resolve(VarintBackend::kAuto);
    g_backend.store(d, std::memory_order_relaxed);
  }
  return d;
}

}  // namespace

VarintBatchFn ActiveVarintDecoder() { return ActiveDesc()->fn; }

VarintDeltaPrefixFn ActiveDeltaPrefixDecoder() {
  return ActiveDesc()->delta_prefix;
}

const char* VarintBackendName() { return ActiveDesc()->name; }

bool VarintBackendIsSimd() { return ActiveDesc()->simd; }

void SetVarintBackend(VarintBackend backend) {
  g_backend.store(Resolve(backend), std::memory_order_relaxed);
}

bool VarintSimdCompiledIn() { return LIGHTNE_VARINT_SIMD_ARMS != 0; }

}  // namespace lightne
