#include "graph/triangles.h"

#include <algorithm>

#include "parallel/reduce.h"

namespace lightne {

TriangleResult CountTriangles(const CsrGraph& g) {
  const NodeId n = g.NumVertices();
  TriangleResult result;
  // Count each triangle {u < v < w} once: for each edge (u, v) with u < v,
  // intersect the tails of u's and v's sorted adjacency above v.
  result.triangles = ParallelSum<uint64_t>(
      0, n,
      [&](uint64_t ui) {
        const NodeId u = static_cast<NodeId>(ui);
        auto nu = g.Neighbors(u);
        uint64_t count = 0;
        for (size_t k = 0; k < nu.size(); ++k) {
          const NodeId v = nu[k];
          if (v <= u) continue;
          auto nv = g.Neighbors(v);
          // Two-pointer intersection of {w in N(u) : w > v} and
          // {w in N(v) : w > v}.
          auto iu = std::upper_bound(nu.begin(), nu.end(), v);
          auto iv = std::upper_bound(nv.begin(), nv.end(), v);
          while (iu != nu.end() && iv != nv.end()) {
            if (*iu < *iv) {
              ++iu;
            } else if (*iv < *iu) {
              ++iv;
            } else {
              ++count;
              ++iu;
              ++iv;
            }
          }
        }
        return count;
      },
      /*grain=*/16);
  result.wedges = ParallelSum<uint64_t>(0, n, [&](uint64_t v) {
    const uint64_t d = g.Degree(static_cast<NodeId>(v));
    return d * (d - 1) / 2;
  });
  result.global_clustering =
      result.wedges > 0
          ? 3.0 * static_cast<double>(result.triangles) /
                static_cast<double>(result.wedges)
          : 0.0;
  return result;
}

}  // namespace lightne
