#include "graph/stats.h"

#include <atomic>

#include "parallel/atomics.h"
#include "parallel/parallel_for.h"
#include "parallel/reduce.h"

namespace lightne {

namespace {

// Lock-free union-find over atomic parents (standard concurrent CRCW
// union-by-CAS with path halving; linearizable enough for CC since unions
// are retried until the roots agree).
NodeId Find(std::vector<std::atomic<NodeId>>& parent, NodeId x) {
  while (true) {
    NodeId p = parent[x].load(std::memory_order_relaxed);
    if (p == x) return x;
    NodeId gp = parent[p].load(std::memory_order_relaxed);
    if (p == gp) return p;
    parent[x].compare_exchange_weak(p, gp, std::memory_order_relaxed);
    x = gp;
  }
}

void Union(std::vector<std::atomic<NodeId>>& parent, NodeId a, NodeId b) {
  while (true) {
    a = Find(parent, a);
    b = Find(parent, b);
    if (a == b) return;
    if (a < b) std::swap(a, b);  // root toward smaller id for determinism
    NodeId expected = a;
    if (parent[a].compare_exchange_strong(expected, b,
                                          std::memory_order_relaxed)) {
      return;
    }
  }
}

}  // namespace

std::vector<NodeId> ConnectedComponents(const CsrGraph& g,
                                        NodeId* num_components) {
  const NodeId n = g.NumVertices();
  std::vector<std::atomic<NodeId>> parent(n);
  ParallelFor(0, n, [&](uint64_t v) {
    parent[v].store(static_cast<NodeId>(v), std::memory_order_relaxed);
  });
  g.MapEdges([&](NodeId u, NodeId v) {
    if (u < v) Union(parent, u, v);
  });
  std::vector<NodeId> root(n);
  ParallelFor(0, n, [&](uint64_t v) {
    root[v] = Find(parent, static_cast<NodeId>(v));
  });
  // Relabel roots to dense component ids.
  std::vector<NodeId> label(n, 0);
  std::atomic<NodeId> next{0};
  ParallelFor(0, n, [&](uint64_t v) {
    if (root[v] == v) {
      label[v] = next.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::vector<NodeId> out(n);
  ParallelFor(0, n, [&](uint64_t v) { out[v] = label[root[v]]; });
  if (num_components != nullptr) {
    *num_components = next.load(std::memory_order_relaxed);
  }
  return out;
}

GraphStats ComputeStats(const CsrGraph& g) {
  GraphStats s;
  s.num_vertices = g.NumVertices();
  s.num_undirected_edges = g.NumUndirectedEdges();
  const NodeId n = g.NumVertices();
  s.max_degree =
      ParallelMax<uint64_t>(0, n, 0, [&](uint64_t v) {
        return g.Degree(static_cast<NodeId>(v));
      });
  s.avg_degree = n == 0 ? 0 : g.Volume() / static_cast<double>(n);
  s.num_isolated = static_cast<NodeId>(ParallelSum<uint64_t>(
      0, n,
      [&](uint64_t v) { return g.Degree(static_cast<NodeId>(v)) == 0 ? 1 : 0; }));

  NodeId num_components = 0;
  std::vector<NodeId> comp = ConnectedComponents(g, &num_components);
  s.num_components = num_components;
  std::vector<std::atomic<NodeId>> size(num_components);
  ParallelFor(0, num_components, [&](uint64_t c) {
    size[c].store(0, std::memory_order_relaxed);
  });
  ParallelFor(0, n, [&](uint64_t v) {
    size[comp[v]].fetch_add(1, std::memory_order_relaxed);
  });
  s.largest_component = ParallelMax<NodeId>(0, num_components, 0, [&](uint64_t c) {
    return size[c].load(std::memory_order_relaxed);
  });
  return s;
}

std::vector<uint64_t> DegreeHistogram(const CsrGraph& g) {
  const NodeId n = g.NumVertices();
  uint64_t max_degree = ParallelMax<uint64_t>(0, n, 0, [&](uint64_t v) {
    return g.Degree(static_cast<NodeId>(v));
  });
  std::vector<std::atomic<uint64_t>> hist(max_degree + 1);
  ParallelFor(0, max_degree + 1, [&](uint64_t d) {
    hist[d].store(0, std::memory_order_relaxed);
  });
  ParallelFor(0, n, [&](uint64_t v) {
    hist[g.Degree(static_cast<NodeId>(v))].fetch_add(
        1, std::memory_order_relaxed);
  });
  std::vector<uint64_t> out(max_degree + 1);
  ParallelFor(0, max_degree + 1, [&](uint64_t d) {
    out[d] = hist[d].load(std::memory_order_relaxed);
  });
  return out;
}

}  // namespace lightne
