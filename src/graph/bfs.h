// Frontier-based parallel BFS on top of EdgeMap — the canonical Ligra/GBBS
// algorithm, used both as a substrate self-test and for graph diagnostics
// (eccentricity estimates, reachability).
#ifndef LIGHTNE_GRAPH_BFS_H_
#define LIGHTNE_GRAPH_BFS_H_

#include <atomic>
#include <limits>
#include <vector>

#include "graph/edge_map.h"
#include "graph/graph_view.h"

namespace lightne {

constexpr uint32_t kUnreached = std::numeric_limits<uint32_t>::max();

struct BfsResult {
  std::vector<uint32_t> distance;  // kUnreached if not reachable
  std::vector<NodeId> parent;      // self for source, undefined if unreached
  uint32_t num_rounds = 0;
  uint64_t num_reached = 0;
};

/// Parallel BFS from `source`.
template <GraphView G>
BfsResult Bfs(const G& g, NodeId source, const EdgeMapOptions& opt = {}) {
  const NodeId n = g.NumVertices();
  LIGHTNE_CHECK_LT(source, n);
  BfsResult result;
  result.distance.assign(n, kUnreached);
  result.parent.assign(n, source);
  std::vector<std::atomic<NodeId>> parent(n);
  ParallelFor(0, n, [&](uint64_t v) {
    parent[v].store(static_cast<NodeId>(~0u), std::memory_order_relaxed);
  });
  parent[source].store(source, std::memory_order_relaxed);
  result.distance[source] = 0;

  VertexSubset frontier = VertexSubset::Single(n, source);
  uint32_t level = 0;
  result.num_reached = 1;
  while (!frontier.Empty()) {
    ++level;
    VertexSubset next = EdgeMap(
        g, frontier,
        [&](NodeId u, NodeId v) {
          NodeId expected = static_cast<NodeId>(~0u);
          return parent[v].compare_exchange_strong(
              expected, u, std::memory_order_relaxed);
        },
        [&](NodeId v) {
          return parent[v].load(std::memory_order_relaxed) ==
                 static_cast<NodeId>(~0u);
        },
        opt);
    next.Map([&](NodeId v) { result.distance[v] = level; });
    result.num_reached += next.Size();
    frontier = std::move(next);
  }
  result.num_rounds = level > 0 ? level - 1 : 0;
  ParallelFor(0, n, [&](uint64_t v) {
    result.parent[v] = parent[v].load(std::memory_order_relaxed);
  });
  return result;
}

}  // namespace lightne

#endif  // LIGHTNE_GRAPH_BFS_H_
