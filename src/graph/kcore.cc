#include "graph/kcore.h"

#include <algorithm>

namespace lightne {

KCoreResult KCoreDecomposition(const CsrGraph& g) {
  const NodeId n = g.NumVertices();
  KCoreResult result;
  result.coreness.assign(n, 0);
  if (n == 0) return result;

  // Bucket sort vertices by degree.
  std::vector<uint32_t> degree(n);
  uint32_t max_degree = 0;
  for (NodeId v = 0; v < n; ++v) {
    degree[v] = static_cast<uint32_t>(g.Degree(v));
    max_degree = std::max(max_degree, degree[v]);
  }
  std::vector<uint64_t> bucket_start(max_degree + 2, 0);
  for (NodeId v = 0; v < n; ++v) ++bucket_start[degree[v] + 1];
  for (uint32_t d = 0; d <= max_degree; ++d) {
    bucket_start[d + 1] += bucket_start[d];
  }
  std::vector<NodeId> order(n);      // vertices sorted by current degree
  std::vector<uint64_t> position(n); // index of each vertex inside `order`
  {
    std::vector<uint64_t> cursor(bucket_start.begin(),
                                 bucket_start.end() - 1);
    for (NodeId v = 0; v < n; ++v) {
      position[v] = cursor[degree[v]]++;
      order[position[v]] = v;
    }
  }
  // bucket_start[d] = first index in `order` of a vertex with degree >= d.
  // Peel in degree order; decrementing a neighbor's degree swaps it one
  // bucket down in O(1).
  for (uint64_t i = 0; i < n; ++i) {
    const NodeId v = order[i];
    const uint32_t dv = degree[v];
    result.coreness[v] = dv;
    result.max_core = std::max(result.max_core, dv);
    for (NodeId u : g.Neighbors(v)) {
      if (degree[u] <= dv) continue;  // already peeled or same bucket floor
      const uint32_t du = degree[u];
      // Swap u with the first element of its bucket, then shrink the bucket.
      const uint64_t first = bucket_start[du];
      const NodeId w = order[first];
      if (w != u) {
        std::swap(order[first], order[position[u]]);
        std::swap(position[w], position[u]);
      }
      ++bucket_start[du];
      --degree[u];
    }
  }
  return result;
}

}  // namespace lightne
