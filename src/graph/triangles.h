// Parallel triangle counting by oriented adjacency intersection — the other
// canonical GBBS workload; also yields the global clustering coefficient
// used to sanity-check that the link-prediction dataset stand-ins are
// genuinely clustered (DESIGN.md §1).
#ifndef LIGHTNE_GRAPH_TRIANGLES_H_
#define LIGHTNE_GRAPH_TRIANGLES_H_

#include <cstdint>

#include "graph/csr.h"

namespace lightne {

struct TriangleResult {
  uint64_t triangles = 0;
  uint64_t wedges = 0;  // paths of length 2 (ordered centers)
  /// 3 * triangles / wedges, in [0, 1]; 0 when there are no wedges.
  double global_clustering = 0;
};

/// Counts triangles once each (by ascending-id orientation) in parallel.
TriangleResult CountTriangles(const CsrGraph& g);

}  // namespace lightne

#endif  // LIGHTNE_GRAPH_TRIANGLES_H_
