#include "graph/dynamic.h"

#include <algorithm>

#include "parallel/sort.h"

namespace lightne {

const CsrGraph& DynamicGraph::Snapshot() {
  if (has_snapshot_ && buffer_.empty()) return snapshot_;

  // Clean the delta: symmetrize, sort, dedup, drop self loops.
  EdgeList delta;
  delta.num_vertices = num_vertices_;
  delta.edges = std::move(buffer_);
  buffer_.clear();
  SymmetrizeAndClean(&delta);

  // Merge the sorted old snapshot edges with the sorted delta (both clean).
  EdgeList merged;
  merged.num_vertices = num_vertices_;
  merged.edges.reserve(materialized_.edges.size() + delta.edges.size());
  std::merge(materialized_.edges.begin(), materialized_.edges.end(),
             delta.edges.begin(), delta.edges.end(),
             std::back_inserter(merged.edges));
  merged.edges.erase(std::unique(merged.edges.begin(), merged.edges.end()),
                     merged.edges.end());

  materialized_ = std::move(merged);
  snapshot_ = CsrGraph::FromCleanEdgeList(materialized_);
  has_snapshot_ = true;
  ++version_;
  return snapshot_;
}

}  // namespace lightne
