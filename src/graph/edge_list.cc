#include "graph/edge_list.h"

#include <algorithm>

#include "parallel/parallel_for.h"
#include "parallel/scan.h"
#include "parallel/sort.h"

namespace lightne {

void Symmetrize(EdgeList* list) {
  const size_t n = list->edges.size();
  list->edges.resize(2 * n);
  ParallelFor(0, n, [&](uint64_t i) {
    const auto [u, v] = list->edges[i];
    list->edges[n + i] = {v, u};
  });
}

void SortDedup(EdgeList* list, bool drop_self_loops) {
  auto& edges = list->edges;
  ParallelSort(edges.data(), edges.size());
  const uint64_t n = edges.size();
  auto kept = ParallelPack<std::pair<NodeId, NodeId>>(
      n,
      [&](uint64_t i) {
        if (drop_self_loops && edges[i].first == edges[i].second) return false;
        return i == 0 || edges[i] != edges[i - 1];
      },
      [&](uint64_t i) { return edges[i]; });
  edges = std::move(kept);
}

void SymmetrizeAndClean(EdgeList* list) {
  Symmetrize(list);
  SortDedup(list);
}

}  // namespace lightne
