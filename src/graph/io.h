// Graph persistence: whitespace-separated edge-list text files (the format
// used by SNAP/WDC dumps the paper loads) and a compact binary format.
#ifndef LIGHTNE_GRAPH_IO_H_
#define LIGHTNE_GRAPH_IO_H_

#include <string>

#include "graph/edge_list.h"
#include "graph/weighted_csr.h"
#include "util/status.h"

namespace lightne {

/// Reads "u v" pairs, one per line; '#' or '%' lines are comments. Vertex
/// count is max id + 1 unless the file declares "# nodes: N".
Result<EdgeList> LoadEdgeListText(const std::string& path);

/// Writes one "u v" line per edge.
Status SaveEdgeListText(const EdgeList& list, const std::string& path);

/// Binary format: magic, num_vertices, num_edges, raw (u,v) pairs.
Result<EdgeList> LoadEdgeListBinary(const std::string& path);
Status SaveEdgeListBinary(const EdgeList& list, const std::string& path);

/// Reads "u v w" triples (weight optional per line; defaults to 1.0).
Result<WeightedEdgeList> LoadWeightedEdgeListText(const std::string& path);

/// Writes one "u v w" line per edge.
Status SaveWeightedEdgeListText(const WeightedEdgeList& list,
                                const std::string& path);

}  // namespace lightne

#endif  // LIGHTNE_GRAPH_IO_H_
