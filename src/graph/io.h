// Graph persistence: whitespace-separated edge-list text files (the format
// used by SNAP/WDC dumps the paper loads) and a compact binary format.
//
// All entry points take a RetryOptions and transparently retry transient
// failures (kIOError) with bounded exponential backoff; parse errors
// (kInvalidArgument / kOutOfRange) surface immediately. Savers write through
// AtomicFileWriter (util/artifact_io.h): bytes go to `<path>.tmp` and are
// atomically renamed onto `path` only after fsync, so neither a write
// failure nor a crash mid-save can leave a partial or torn file at `path`.
#ifndef LIGHTNE_GRAPH_IO_H_
#define LIGHTNE_GRAPH_IO_H_

#include <string>

#include "graph/edge_list.h"
#include "graph/weighted_csr.h"
#include "util/retry.h"
#include "util/status.h"

namespace lightne {

/// Reads "u v" pairs, one per line; '#' or '%' lines are comments, blank
/// lines (including CRLF-only) are skipped. Vertex count is max id + 1
/// unless the file declares "# nodes: N". Malformed data lines yield
/// kInvalidArgument naming the offending line number.
Result<EdgeList> LoadEdgeListText(const std::string& path,
                                  const RetryOptions& retry = {});

/// Writes one "u v" line per edge.
Status SaveEdgeListText(const EdgeList& list, const std::string& path,
                        const RetryOptions& retry = {});

/// Binary format: magic, num_vertices, num_edges, raw (u,v) pairs.
Result<EdgeList> LoadEdgeListBinary(const std::string& path,
                                    const RetryOptions& retry = {});
Status SaveEdgeListBinary(const EdgeList& list, const std::string& path,
                          const RetryOptions& retry = {});

/// Reads "u v w" triples (weight optional per line; defaults to 1.0).
/// Same comment/blank/CRLF handling and strict parsing as LoadEdgeListText.
Result<WeightedEdgeList> LoadWeightedEdgeListText(
    const std::string& path, const RetryOptions& retry = {});

/// Writes one "u v w" line per edge.
Status SaveWeightedEdgeListText(const WeightedEdgeList& list,
                                const std::string& path,
                                const RetryOptions& retry = {});

}  // namespace lightne

#endif  // LIGHTNE_GRAPH_IO_H_
