#include "graph/csr.h"

#include <algorithm>

#include "parallel/scan.h"

namespace lightne {

CsrGraph CsrGraph::FromCleanEdgeList(const EdgeList& list) {
  CsrGraph g;
  g.num_vertices_ = list.num_vertices;
  const uint64_t e = list.edges.size();
  g.offsets_.assign(static_cast<size_t>(g.num_vertices_) + 1, 0);
  // The list is sorted by src, so degrees can be counted then scanned, and
  // the scatter is a straight parallel copy.
  std::vector<uint64_t> degree(g.num_vertices_, 0);
  {
    std::vector<std::atomic<uint64_t>> deg(g.num_vertices_);
    ParallelFor(0, e, [&](uint64_t i) {
      const auto [u, v] = list.edges[i];
      LIGHTNE_CHECK_LT(u, g.num_vertices_);
      LIGHTNE_CHECK_LT(v, g.num_vertices_);
      deg[u].fetch_add(1, std::memory_order_relaxed);
    });
    ParallelFor(0, g.num_vertices_, [&](uint64_t v) {
      degree[v] = deg[v].load(std::memory_order_relaxed);
    });
  }
  ParallelFor(0, g.num_vertices_,
              [&](uint64_t v) { g.offsets_[v + 1] = degree[v]; });
  // offsets_[0] stays 0; inclusive scan over the remainder.
  ParallelScanExclusive(g.offsets_.data() + 1, g.num_vertices_);
  ParallelFor(0, g.num_vertices_, [&](uint64_t v) {
    g.offsets_[v + 1] += degree[v];
  });
  LIGHTNE_CHECK_EQ(g.offsets_[g.num_vertices_], e);

  g.neighbors_.resize(e);
  ParallelFor(0, e, [&](uint64_t i) { g.neighbors_[i] = list.edges[i].second; });
#ifndef NDEBUG
  // Clean input implies sorted rows; verify in debug builds.
  g.MapVertices([&](NodeId v) {
    auto nbrs = g.Neighbors(v);
    LIGHTNE_CHECK(std::is_sorted(nbrs.begin(), nbrs.end()));
  });
#endif
  return g;
}

CsrGraph CsrGraph::FromEdges(EdgeList list) {
  SymmetrizeAndClean(&list);
  return FromCleanEdgeList(list);
}

EdgeList CsrGraph::ToEdgeList() const {
  EdgeList list;
  list.num_vertices = num_vertices_;
  list.edges.resize(neighbors_.size());
  ParallelFor(0, num_vertices_, [&](uint64_t u) {
    for (uint64_t k = offsets_[u]; k < offsets_[u + 1]; ++k) {
      list.edges[k] = {static_cast<NodeId>(u), neighbors_[k]};
    }
  });
  return list;
}

}  // namespace lightne
