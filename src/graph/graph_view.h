// The GraphView concept: the structural interface shared by CsrGraph and
// CompressedGraph. Algorithms (path sampling, Laplacian ops, baselines) are
// templates over any GraphView, exactly as GBBS algorithms are generic over
// compressed and uncompressed representations.
#ifndef LIGHTNE_GRAPH_GRAPH_VIEW_H_
#define LIGHTNE_GRAPH_GRAPH_VIEW_H_

#include <concepts>
#include <cstdint>

#include "graph/types.h"

namespace lightne {

template <typename G>
concept GraphView = requires(const G& g, NodeId v, uint64_t i) {
  { g.NumVertices() } -> std::convertible_to<NodeId>;
  { g.NumDirectedEdges() } -> std::convertible_to<EdgeId>;
  { g.Volume() } -> std::convertible_to<double>;
  { g.Degree(v) } -> std::convertible_to<uint64_t>;
  { g.Neighbor(v, i) } -> std::convertible_to<NodeId>;
  g.MapNeighbors(v, [](NodeId) {});
  g.MapEdges([](NodeId, NodeId) {});
  g.MapVertices([](NodeId) {});
};

}  // namespace lightne

#endif  // LIGHTNE_GRAPH_GRAPH_VIEW_H_
