// Random-walk primitives over any GraphView. A step samples a uniformly
// random incident edge of the current vertex via Neighbor(v, i) — O(1) on
// raw CSR, O(block) on the parallel-byte compressed format (§4.2). We use an
// unbiased bounded draw rather than the paper's `rand32 % degree` (which has
// negligible modulo bias at graph scale but is avoidable for free here).
#ifndef LIGHTNE_GRAPH_RANDOM_WALK_H_
#define LIGHTNE_GRAPH_RANDOM_WALK_H_

#include "graph/graph_view.h"
#include "util/check.h"
#include "util/random.h"

namespace lightne {

/// One uniform step from v. v must have degree >= 1 (always true for
/// endpoints of edges in a symmetric graph).
template <GraphView G>
NodeId RandomNeighbor(const G& g, NodeId v, Rng& rng) {
  const uint64_t d = g.Degree(v);
  LIGHTNE_CHECK_GT(d, 0u);
  return g.Neighbor(v, rng.UniformInt(d));
}

/// Walks `steps` uniform steps from v and returns the endpoint.
template <GraphView G>
NodeId RandomWalk(const G& g, NodeId v, uint64_t steps, Rng& rng) {
  for (uint64_t s = 0; s < steps; ++s) v = RandomNeighbor(g, v, rng);
  return v;
}

}  // namespace lightne

#endif  // LIGHTNE_GRAPH_RANDOM_WALK_H_
