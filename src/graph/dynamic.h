// Streaming graph support — the paper's §6 future-work direction and the
// industry loop its introduction motivates (graphs that receive edges
// continuously and are re-embedded every few hours).
//
// DynamicGraph absorbs edge batches into a buffer and materializes a clean
// symmetric CSR snapshot on demand. Materialization merges the previous
// (sorted) snapshot with the sorted batch instead of re-sorting everything,
// so the amortized cost per update cycle is O(delta log delta + n + m).
#ifndef LIGHTNE_GRAPH_DYNAMIC_H_
#define LIGHTNE_GRAPH_DYNAMIC_H_

#include <utility>
#include <vector>

#include "graph/csr.h"
#include "graph/edge_list.h"
#include "graph/types.h"

namespace lightne {

class DynamicGraph {
 public:
  explicit DynamicGraph(NodeId num_vertices = 0)
      : num_vertices_(num_vertices) {}

  NodeId NumVertices() const { return num_vertices_; }

  /// Undirected edges currently waiting in the buffer (before dedup).
  uint64_t BufferedEdges() const { return buffer_.size(); }

  /// Monotone snapshot counter; bumps every time Snapshot() rebuilds.
  uint64_t version() const { return version_; }

  /// Queues an undirected edge. Vertex ids beyond the current universe grow
  /// it. Self loops are accepted here and dropped at materialization.
  void AddEdge(NodeId u, NodeId v) {
    buffer_.emplace_back(u, v);
    if (u >= num_vertices_) num_vertices_ = u + 1;
    if (v >= num_vertices_) num_vertices_ = v + 1;
  }

  /// Queues a batch.
  void AddEdges(const std::vector<std::pair<NodeId, NodeId>>& batch) {
    for (const auto& [u, v] : batch) AddEdge(u, v);
  }

  /// Current clean symmetric CSR snapshot. Rebuilds only if edges were added
  /// since the last call; otherwise returns the cached snapshot.
  const CsrGraph& Snapshot();

 private:
  NodeId num_vertices_ = 0;
  std::vector<std::pair<NodeId, NodeId>> buffer_;
  EdgeList materialized_;  // clean symmetric sorted edges of the snapshot
  CsrGraph snapshot_;
  uint64_t version_ = 0;
  bool has_snapshot_ = false;
};

}  // namespace lightne

#endif  // LIGHTNE_GRAPH_DYNAMIC_H_
