// k-core decomposition (coreness of every vertex) by bucket peeling — one
// of the canonical GBBS workloads, useful here for dataset diagnostics
// (community stand-ins should show the core structure of their real
// counterparts).
#ifndef LIGHTNE_GRAPH_KCORE_H_
#define LIGHTNE_GRAPH_KCORE_H_

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "graph/types.h"

namespace lightne {

struct KCoreResult {
  std::vector<uint32_t> coreness;  // per vertex
  uint32_t max_core = 0;
};

/// O(m) peeling (Batagelj–Zaveršnik bucket algorithm).
KCoreResult KCoreDecomposition(const CsrGraph& g);

}  // namespace lightne

#endif  // LIGHTNE_GRAPH_KCORE_H_
