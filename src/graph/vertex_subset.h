// Ligra-style vertex subsets (Shun & Blelloch, PPoPP'13): the frontier
// abstraction GBBS builds on. A subset is held either sparse (a list of
// vertex ids) or dense (a byte per vertex) and converts lazily; EdgeMap
// (graph/edge_map.h) picks the traversal direction from the representation
// heuristic.
#ifndef LIGHTNE_GRAPH_VERTEX_SUBSET_H_
#define LIGHTNE_GRAPH_VERTEX_SUBSET_H_

#include <cstdint>
#include <vector>

#include "graph/types.h"
#include "parallel/parallel_for.h"
#include "parallel/reduce.h"
#include "parallel/scan.h"
#include "parallel/sort.h"
#include "util/check.h"

namespace lightne {

class VertexSubset {
 public:
  /// Empty subset over a universe of n vertices.
  explicit VertexSubset(NodeId universe) : universe_(universe) {}

  /// Sparse subset from explicit ids (need not be sorted; no duplicates).
  VertexSubset(NodeId universe, std::vector<NodeId> ids)
      : universe_(universe), sparse_(std::move(ids)), is_sparse_(true) {}

  /// Dense subset from a flag array of size n.
  VertexSubset(NodeId universe, std::vector<uint8_t> flags)
      : universe_(universe), dense_(std::move(flags)), is_sparse_(false) {
    LIGHTNE_CHECK_EQ(dense_.size(), universe_);
  }

  /// Singleton subset.
  static VertexSubset Single(NodeId universe, NodeId v) {
    return VertexSubset(universe, std::vector<NodeId>{v});
  }

  NodeId universe() const { return universe_; }
  bool is_sparse() const { return is_sparse_; }

  /// Number of member vertices.
  uint64_t Size() const {
    if (is_sparse_) return sparse_.size();
    return ParallelSum<uint64_t>(0, universe_,
                                 [&](uint64_t v) { return dense_[v] ? 1 : 0; });
  }

  bool Empty() const { return Size() == 0; }

  /// Membership test (O(1) dense, O(size) sparse — callers on hot paths
  /// should densify first).
  bool Contains(NodeId v) const {
    if (!is_sparse_) return dense_[v] != 0;
    for (NodeId u : sparse_) {
      if (u == v) return true;
    }
    return false;
  }

  /// Converts to the dense representation (idempotent).
  void Densify() {
    if (!is_sparse_) return;
    dense_.assign(universe_, 0);
    ParallelFor(0, sparse_.size(),
                [&](uint64_t i) { dense_[sparse_[i]] = 1; });
    sparse_.clear();
    is_sparse_ = false;
  }

  /// Converts to the sparse representation, ids ascending (idempotent).
  void Sparsify() {
    if (is_sparse_) return;
    sparse_ = ParallelPack<NodeId>(
        universe_, [&](uint64_t v) { return dense_[v] != 0; },
        [](uint64_t v) { return static_cast<NodeId>(v); });
    dense_.clear();
    is_sparse_ = true;
  }

  /// Member ids, ascending (sparsifies a copy if needed).
  std::vector<NodeId> ToIds() const {
    if (is_sparse_) {
      std::vector<NodeId> ids = sparse_;
      ParallelSort(ids);
      return ids;
    }
    return ParallelPack<NodeId>(
        universe_, [&](uint64_t v) { return dense_[v] != 0; },
        [](uint64_t v) { return static_cast<NodeId>(v); });
  }

  const std::vector<NodeId>& sparse_ids() const {
    LIGHTNE_CHECK(is_sparse_);
    return sparse_;
  }
  const std::vector<uint8_t>& dense_flags() const {
    LIGHTNE_CHECK(!is_sparse_);
    return dense_;
  }

  /// Applies fn(v) to every member, in parallel.
  template <typename F>
  void Map(F&& fn) const {
    if (is_sparse_) {
      ParallelFor(0, sparse_.size(), [&](uint64_t i) { fn(sparse_[i]); });
    } else {
      ParallelFor(0, universe_, [&](uint64_t v) {
        if (dense_[v]) fn(static_cast<NodeId>(v));
      });
    }
  }

 private:
  NodeId universe_ = 0;
  std::vector<NodeId> sparse_;
  std::vector<uint8_t> dense_;
  bool is_sparse_ = true;
};

}  // namespace lightne

#endif  // LIGHTNE_GRAPH_VERTEX_SUBSET_H_
