// Node classification on a labeled graph — the paper's OAG/Friendster
// workload. Embeds the same graph with LightNE and ProNE+, then trains
// one-vs-rest logistic regression at several label ratios and reports
// Micro/Macro F1 for both systems side by side.
//
//   node_classification [--nodes 30000] [--communities 16] [--dim 64]
//                       [--ratio 2.0] [--seed 7]
#include <cstdio>

#include "baselines/prone.h"
#include "core/lightne.h"
#include "data/generators.h"
#include "data/labels.h"
#include "eval/classification.h"
#include "graph/csr.h"
#include "util/cli.h"

using namespace lightne;  // NOLINT

int main(int argc, char** argv) {
  auto cli = CommandLine::Parse(argc, argv);
  if (!cli.ok()) return 1;
  const NodeId n = static_cast<NodeId>(cli->GetInt("nodes", 30000));
  const NodeId communities =
      static_cast<NodeId>(cli->GetInt("communities", 16));
  const uint64_t seed = static_cast<uint64_t>(cli->GetInt("seed", 7));

  std::printf("generating SBM: %u nodes, %u communities\n", n, communities);
  std::vector<NodeId> community;
  CsrGraph graph = CsrGraph::FromEdges(
      GenerateSbm(n, communities, static_cast<EdgeId>(n) * 10, 0.75, seed,
                  &community));
  MultiLabels labels =
      LabelsFromCommunities(community, communities, 0.15, seed);
  std::printf("graph: %u vertices, %llu edges, %u labels\n",
              graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumUndirectedEdges()),
              labels.num_labels);

  LightNeOptions lopt;
  lopt.dim = static_cast<uint64_t>(cli->GetInt("dim", 64));
  lopt.samples_ratio = cli->GetDouble("ratio", 2.0);
  lopt.window = 10;
  Timer lightne_timer;
  auto lightne = RunLightNe(graph, lopt);
  if (!lightne.ok()) {
    std::fprintf(stderr, "%s\n", lightne.status().ToString().c_str());
    return 1;
  }
  const double lightne_seconds = lightne_timer.Seconds();

  ProneOptions popt;
  popt.dim = lopt.dim;
  Timer prone_timer;
  auto prone = RunProne(graph, popt);
  if (!prone.ok()) {
    std::fprintf(stderr, "%s\n", prone.status().ToString().c_str());
    return 1;
  }
  const double prone_seconds = prone_timer.Seconds();

  std::printf("\n%-10s %-10s %-12s %-12s %-12s %-12s\n", "ratio",
              "system", "time(s)", "Micro-F1", "Macro-F1", "");
  for (double train_ratio : {0.01, 0.05, 0.10, 0.50}) {
    F1Scores lightne_f1 = EvaluateNodeClassification(
        lightne->embedding, labels, train_ratio, seed);
    F1Scores prone_f1 =
        EvaluateNodeClassification(prone->embedding, labels, train_ratio,
                                   seed);
    std::printf("%-10.2f %-10s %-12.1f %-12.4f %-12.4f\n", train_ratio,
                "LightNE", lightne_seconds, lightne_f1.micro,
                lightne_f1.macro);
    std::printf("%-10.2f %-10s %-12.1f %-12.4f %-12.4f\n", train_ratio,
                "ProNE+", prone_seconds, prone_f1.micro, prone_f1.macro);
  }
  return 0;
}
