// Quickstart: embed a graph with LightNE in ~30 lines of API use.
//
//   quickstart [--edges FILE] [--dim 64] [--window 10] [--ratio 1.0]
//              [--memory-budget-mb 0] [--out embedding.txt] [--trace FILE]
//              [--checkpoint_dir DIR] [--resume]
//
// Without --edges, a small synthetic social network is generated. The
// program prints the stage breakdown (sparsifier / randomized SVD / spectral
// propagation) and writes one embedding row per line.
#include <cstdio>

#include "core/lightne.h"
#include "data/generators.h"
#include "graph/csr.h"
#include "graph/io.h"
#include "graph/stats.h"
#include "la/embedding_io.h"
#include "util/cli.h"

using namespace lightne;  // NOLINT — examples favour brevity

int main(int argc, char** argv) {
  auto cli = CommandLine::Parse(argc, argv);
  if (!cli.ok()) {
    std::fprintf(stderr, "bad arguments: %s\n",
                 cli.status().ToString().c_str());
    return 1;
  }

  // 1. Load or generate a graph.
  EdgeList edges;
  const std::string path = cli->GetString("edges");
  if (!path.empty()) {
    auto loaded = LoadEdgeListText(path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    edges = std::move(*loaded);
    std::printf("loaded %zu edges from %s\n", edges.edges.size(),
                path.c_str());
  } else {
    std::printf("no --edges given; generating a 2^14-vertex RMAT graph\n");
    edges = GenerateRmat(14, 200000, /*seed=*/42);
  }
  CsrGraph graph = CsrGraph::FromEdges(std::move(edges));
  GraphStats stats = ComputeStats(graph);
  std::printf("graph: %u vertices, %llu edges, max degree %llu, "
              "%u components\n",
              stats.num_vertices,
              static_cast<unsigned long long>(stats.num_undirected_edges),
              static_cast<unsigned long long>(stats.max_degree),
              stats.num_components);

  // 2. Embed.
  LightNeOptions opt;
  opt.dim = static_cast<uint64_t>(cli->GetInt("dim", 64));
  opt.window = static_cast<uint32_t>(cli->GetInt("window", 10));
  opt.samples_ratio = cli->GetDouble("ratio", 1.0);
  // 0 = unlimited; under a budget the sparsifier degrades gracefully and
  // the run is flagged below instead of OOM-dying.
  opt.memory_budget_bytes =
      static_cast<uint64_t>(cli->GetInt("memory-budget-mb", 0)) << 20;
  // Optional Chrome trace of this run (open in chrome://tracing / Perfetto).
  opt.trace_path = cli->GetString("trace");
  // Optional crash-safe checkpointing: with --checkpoint_dir each finished
  // stage is journaled there, and --resume picks up after the last complete
  // stage (stale/corrupt artifacts just mean recompute — never a failure).
  opt.checkpoint_dir = cli->GetString("checkpoint_dir");
  opt.resume = cli->GetBool("resume");
  auto result = RunLightNe(graph, opt);
  if (!result.ok()) {
    std::fprintf(stderr, "LightNE failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 3. Report.
  if (result->resume_stages_skipped > 0) {
    std::printf("resumed from checkpoint: %llu stage(s) skipped\n",
                static_cast<unsigned long long>(
                    result->resume_stages_skipped));
  }
  for (const auto& [stage, seconds] : result->timing.stages()) {
    std::printf("  stage %-12s %8.2f s\n", stage.c_str(), seconds);
  }
  std::printf("sparsifier: %llu samples accepted, %llu nonzeros after "
              "trunc_log\n",
              static_cast<unsigned long long>(
                  result->sparsifier_stats.samples_accepted),
              static_cast<unsigned long long>(result->sparsifier_nnz));
  if (result->degraded) {
    std::printf("memory budget: degraded build (C tightened %dx%s), peak "
                "reserved %llu bytes\n",
                result->sparsifier_stats.budget_tightenings,
                result->sparsifier_stats.capacity_capped
                    ? ", table capacity capped"
                    : "",
                static_cast<unsigned long long>(result->peak_reserved_bytes));
  }

  // 4. Save (word2vec text format).
  const std::string out = cli->GetString("out", "embedding.txt");
  Status save = SaveEmbeddingText(result->embedding, out);
  if (!save.ok()) {
    std::fprintf(stderr, "%s\n", save.ToString().c_str());
    return 1;
  }
  std::printf("wrote %llu x %llu embedding to %s\n",
              static_cast<unsigned long long>(result->embedding.rows()),
              static_cast<unsigned long long>(result->embedding.cols()),
              out.c_str());
  return 0;
}
