// The very-large-graph recipe from §5.3 of the paper, scaled to this
// machine: parallel-byte graph compression, T = 2, d = 32, spectral
// propagation off, downsampled sparsifier. Prints the memory story —
// raw CSR vs compressed size, hash-table footprint — alongside embedding
// time and link-prediction quality.
//
//   billion_scale [--scale 19] [--edges 4000000] [--ratio 0.5]
#include <cstdio>

#include "core/lightne.h"
#include "data/generators.h"
#include "eval/link_prediction.h"
#include "graph/compressed.h"
#include "graph/csr.h"
#include "util/cli.h"
#include "util/memory.h"

using namespace lightne;  // NOLINT

int main(int argc, char** argv) {
  auto cli = CommandLine::Parse(argc, argv);
  if (!cli.ok()) return 1;
  const int scale = static_cast<int>(cli->GetInt("scale", 19));
  const EdgeId edges = static_cast<EdgeId>(cli->GetInt("edges", 4000000));

  std::printf("generating RMAT 2^%d with %llu sampled edges...\n", scale,
              static_cast<unsigned long long>(edges));
  EdgeList raw = GenerateRmat(scale, edges, 3);
  SymmetrizeAndClean(&raw);
  EdgeSplit split = SplitEdges(raw, 1e-4, 3);
  CsrGraph csr = CsrGraph::FromCleanEdgeList(split.train);
  CompressedGraph compressed = CompressedGraph::FromCsr(csr, /*block=*/64);
  std::printf("graph: %u vertices, %llu edges\n", csr.NumVertices(),
              static_cast<unsigned long long>(csr.NumUndirectedEdges()));
  std::printf("  raw CSR:          %s\n", HumanBytes(csr.SizeBytes()).c_str());
  std::printf("  parallel-byte:    %s (%.1f%% of CSR)\n",
              HumanBytes(compressed.SizeBytes()).c_str(),
              100.0 * compressed.SizeBytes() / csr.SizeBytes());

  // The §5.3 configuration.
  LightNeOptions opt;
  opt.dim = 32;
  opt.window = 2;
  opt.spectral_propagation = false;
  opt.samples_ratio = cli->GetDouble("ratio", 0.5);
  Timer timer;
  auto result = RunLightNe(compressed, opt);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("embedded (T=2, d=32, no propagation) in %.1f s\n",
              timer.Seconds());
  std::printf("  samples accepted: %llu\n",
              static_cast<unsigned long long>(
                  result->sparsifier_stats.samples_accepted));
  std::printf("  hash table:       %s\n",
              HumanBytes(result->sparsifier_stats.table_bytes).c_str());
  std::printf("  peak RSS:         %s\n", HumanBytes(PeakRssBytes()).c_str());

  RankingMetrics m = EvaluateRanking(result->embedding, split.test_positives,
                                     500, {1, 10, 50}, 9);
  std::printf("link prediction over %zu held-out edges: HITS@1 %.3f  "
              "HITS@10 %.3f  HITS@50 %.3f\n",
              split.test_positives.size(), m.hits_at[0], m.hits_at[1],
              m.hits_at[2]);
  return 0;
}
