// lightne_serve: build a quantized embedding store, then serve top-k
// queries from it — the serving half of the pipeline (DESIGN.md §14).
//
//   lightne_serve build --embedding emb.txt --store emb.est [--quant int8]
//                       [--memory-budget-mb 0]
//   lightne_serve query --store emb.est [--requests 100] [--batch 16]
//                       [--k 10] [--trace FILE] [--memory-budget-mb 0]
//
// `build` quantizes a word2vec-text or binary embedding (auto-detected by
// extension: .bin is binary, anything else text) into the framed+CRC store
// format. Without --embedding it embeds a small synthetic RMAT graph first,
// so the binary is a self-contained demo.
//
// `query` is the load-then-query loop a serving process runs: open the
// store (every frame checksum validated once, then zero-copy), answer
// batched top-k requests, and report QPS plus exact p50/p99 per-request
// latency. Queries are the store's own vertices (dequantized through its
// codebook), cycled round-robin — every request exercises the full scoring
// path. The per-batch latency distribution also lands in the
// "serve/batch_us" metrics histogram, printed at the end; --trace exports
// the per-request spans as Chrome trace-event JSON.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/embedding_store.h"
#include "core/lightne.h"
#include "core/query_engine.h"
#include "data/generators.h"
#include "graph/csr.h"
#include "la/embedding_io.h"
#include "util/cli.h"
#include "util/memory.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/timer.h"
#include "util/trace.h"

using namespace lightne;  // NOLINT — examples favour brevity

namespace {

int Fail(const Status& s) {
  std::fprintf(stderr, "%s\n", s.ToString().c_str());
  return 1;
}

Result<Matrix> LoadOrTrainEmbedding(const CommandLine& cli) {
  const std::string path = cli.GetString("embedding");
  if (!path.empty()) {
    const bool binary =
        path.size() > 4 && path.compare(path.size() - 4, 4, ".bin") == 0;
    return binary ? LoadEmbeddingBinary(path) : LoadEmbeddingText(path);
  }
  std::printf("no --embedding given; embedding a 2^12-vertex RMAT graph\n");
  CsrGraph graph = CsrGraph::FromEdges(GenerateRmat(12, 60000, /*seed=*/42));
  LightNeOptions opt;
  opt.dim = static_cast<uint64_t>(cli.GetInt("dim", 32));
  auto run = RunLightNe(graph, opt);
  if (!run.ok()) return run.status();
  return std::move(run->embedding);
}

int RunBuild(const CommandLine& cli, MemoryBudget* budget) {
  auto embedding = LoadOrTrainEmbedding(cli);
  if (!embedding.ok()) return Fail(embedding.status());
  auto kind = ParseQuantKind(cli.GetString("quant", "int8"));
  if (!kind.ok()) return Fail(kind.status());
  const std::string out = cli.GetString("store", "embedding.est");

  Status write = EmbeddingStore::Write(*embedding, out, *kind, budget);
  if (!write.ok()) return Fail(write);
  auto store = EmbeddingStore::Open(out, budget);
  if (!store.ok()) return Fail(store.status());
  const uint64_t fp32_bytes = embedding->rows() * embedding->cols() * 4;
  std::printf("wrote %s: %llu x %llu %s, %llu bytes on disk "
              "(%.2fx vs raw fp32), source fingerprint %016llx\n",
              out.c_str(),
              static_cast<unsigned long long>(store->rows()),
              static_cast<unsigned long long>(store->dims()),
              QuantKindName(store->kind()),
              static_cast<unsigned long long>(store->store_bytes()),
              static_cast<double>(fp32_bytes) /
                  static_cast<double>(store->store_bytes()),
              static_cast<unsigned long long>(store->source_fingerprint()));
  return 0;
}

int RunQuery(const CommandLine& cli, MemoryBudget* budget) {
  const std::string path = cli.GetString("store", "embedding.est");
  auto store = EmbeddingStore::Open(path, budget);
  if (!store.ok()) return Fail(store.status());
  std::printf("serving %s: %llu x %llu %s, %llu bytes mapped\n", path.c_str(),
              static_cast<unsigned long long>(store->rows()),
              static_cast<unsigned long long>(store->dims()),
              QuantKindName(store->kind()),
              static_cast<unsigned long long>(store->store_bytes()));

  const uint64_t requests =
      static_cast<uint64_t>(cli.GetInt("requests", 100));
  const uint64_t batch = static_cast<uint64_t>(cli.GetInt("batch", 16));
  const uint64_t k = std::min(static_cast<uint64_t>(cli.GetInt("k", 10)),
                              store->rows());
  QueryEngine engine(&*store);

  // The query stream: stored vertices, cycled with a stride so consecutive
  // batches don't hit the same rows.
  std::vector<NodeId> ids(batch);
  std::vector<double> latencies_ms;
  latencies_ms.reserve(requests);
  uint64_t checksum = 0;
  Timer wall;
  for (uint64_t r = 0; r < requests; ++r) {
    for (uint64_t b = 0; b < batch; ++b) {
      ids[b] = static_cast<NodeId>((r * 131 + b * 7) % store->rows());
    }
    Timer t;
    auto result = engine.TopKByVertex(ids, k);
    if (!result.ok()) return Fail(result.status());
    latencies_ms.push_back(t.Millis());
    for (const auto& list : *result) {
      for (const ScoredNeighbor& n : list) {
        checksum = HashCombine64(checksum, n.id);
      }
    }
  }
  const double total_s = wall.Seconds();

  std::sort(latencies_ms.begin(), latencies_ms.end());
  const auto pct = [&](double p) {
    const size_t i = static_cast<size_t>(p * (latencies_ms.size() - 1));
    return latencies_ms[i];
  };
  std::printf("%llu requests x batch %llu, k=%llu: %.0f queries/s, "
              "per-request p50 %.3f ms  p99 %.3f ms  max %.3f ms\n",
              static_cast<unsigned long long>(requests),
              static_cast<unsigned long long>(batch),
              static_cast<unsigned long long>(k),
              static_cast<double>(requests * batch) / total_s, pct(0.5),
              pct(0.99), latencies_ms.back());
  std::printf("result checksum %016llx (bit-identical at any worker count "
              "and batch size)\n",
              static_cast<unsigned long long>(checksum));

  // The same distribution as seen by the metrics layer.
  MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  auto it = snap.histograms.find("serve/batch_us");
  if (it != snap.histograms.end()) {
    std::printf("serve/batch_us histogram:");
    for (size_t b = 0; b < it->second.counts.size(); ++b) {
      if (it->second.counts[b] == 0) continue;
      if (b < it->second.bounds.size()) {
        std::printf("  <=%.0fus: %llu", it->second.bounds[b],
                    static_cast<unsigned long long>(it->second.counts[b]));
      } else {
        std::printf("  >max: %llu",
                    static_cast<unsigned long long>(it->second.counts[b]));
      }
    }
    std::printf("\n");
  }

  const std::string trace = cli.GetString("trace");
  if (!trace.empty()) {
    Status s = TraceRecorder::WriteChromeTrace(
        TraceRecorder::Global().EventsSince(), trace);
    if (!s.ok()) return Fail(s);
    std::printf("wrote Chrome trace to %s\n", trace.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto cli = CommandLine::Parse(argc, argv);
  if (!cli.ok()) return Fail(cli.status());
  const std::string mode =
      cli->positional().empty() ? "" : cli->positional()[0];

  MemoryBudget budget(
      static_cast<uint64_t>(cli->GetInt("memory-budget-mb", 0)) << 20);
  MemoryBudget* budget_ptr =
      cli->GetInt("memory-budget-mb", 0) > 0 ? &budget : nullptr;

  if (mode == "build") return RunBuild(*cli, budget_ptr);
  if (mode == "query") return RunQuery(*cli, budget_ptr);
  std::fprintf(stderr,
               "usage: %s build|query [--embedding F] [--store F] "
               "[--quant int8|fp16|fp32] [--requests N] [--batch N] [--k N] "
               "[--trace F] [--memory-budget-mb N]\n",
               argv[0]);
  return 2;
}
