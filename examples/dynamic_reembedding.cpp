// The industry scenario the paper's introduction motivates: a graph that
// receives new edges continuously (Alibaba/LinkedIn style) and must be
// re-embedded every few hours. This example streams edge batches into a
// growing graph and re-runs LightNE after every batch, reporting per-round
// latency and the quality of the fresh embedding on the newest edges —
// exactly the "frequent re-embedding at low latency" loop the system is
// designed for.
//
//   dynamic_reembedding [--rounds 5] [--base 200000] [--batch 100000]
#include <cstdio>

#include "core/lightne.h"
#include "data/generators.h"
#include "eval/link_prediction.h"
#include "graph/csr.h"
#include "graph/dynamic.h"
#include "util/cli.h"

using namespace lightne;  // NOLINT

int main(int argc, char** argv) {
  auto cli = CommandLine::Parse(argc, argv);
  if (!cli.ok()) return 1;
  const int rounds = static_cast<int>(cli->GetInt("rounds", 5));
  const EdgeId base = static_cast<EdgeId>(cli->GetInt("base", 200000));
  const EdgeId batch = static_cast<EdgeId>(cli->GetInt("batch", 100000));
  const int scale = 16;

  // One big pool of edges, revealed in arrival order.
  EdgeList pool = GenerateRmat(scale, base + batch * rounds, 5);
  std::printf("streaming %d batches of %llu edges onto a base of %llu\n",
              rounds, static_cast<unsigned long long>(batch),
              static_cast<unsigned long long>(base));
  std::printf("\n%-7s %-12s %-12s %-10s %-12s\n", "round", "edges",
              "embed(s)", "HITS@10", "newest-AUC");

  LightNeOptions opt;
  opt.dim = 64;
  opt.window = 5;
  opt.samples_ratio = 1.0;

  DynamicGraph stream(pool.num_vertices);
  stream.AddEdges({pool.edges.begin(), pool.edges.begin() + base});
  uint64_t visible = base;
  for (int round = 0; round <= rounds; ++round) {
    // Snapshot() merges the newly arrived batch into the previous sorted
    // snapshot instead of rebuilding from scratch.
    const CsrGraph& graph = stream.Snapshot();

    Timer timer;
    auto result = RunLightNe(graph, opt);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    const double seconds = timer.Seconds();

    // Evaluate on the NEXT batch (edges the system has not seen yet): can
    // yesterday's embedding predict tomorrow's links?
    double hits10 = 0, auc = 0;
    if (round < rounds) {
      std::vector<std::pair<NodeId, NodeId>> next;
      for (uint64_t k = visible; k < visible + batch && k < pool.edges.size();
           ++k) {
        auto [u, v] = pool.edges[k];
        if (u == v) continue;
        if (next.size() < 2000) next.push_back({u, v});
      }
      RankingMetrics m =
          EvaluateRanking(result->embedding, next, 500, {10}, 31);
      hits10 = m.hits_at[0];
      auc = EvaluateAuc(result->embedding, next, 31);
    }
    std::printf("%-7d %-12llu %-12.1f %-10.3f %-12.3f\n", round,
                static_cast<unsigned long long>(graph.NumUndirectedEdges()),
                seconds, hits10, auc);
    if (round < rounds) {
      stream.AddEdges({pool.edges.begin() + visible,
                       pool.edges.begin() + visible + batch});
    }
    visible += batch;
  }
  std::printf("\nRe-embedding latency stays flat in graph size — the loop a "
              "production system runs every few hours.\n");
  return 0;
}
