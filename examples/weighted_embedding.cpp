// Weighted-graph embedding: the paper's formulas are stated for general
// A_uv (downsampling probability p_e = min(1, C A_uv (1/d_u + 1/d_v)),
// weight-proportional walks, vol(G) = total weight), and this example shows
// the pipeline honouring them. It builds a graph whose two communities are
// distinguishable ONLY by edge weight — the topology is a uniform random
// graph — embeds it, and verifies the embedding recovers the blocks.
//
//   weighted_embedding [--edges FILE] [--nodes 2000] [--dim 16]
#include <cstdio>

#include "core/lightne.h"
#include "graph/io.h"
#include "graph/weighted_csr.h"
#include "util/cli.h"
#include "util/random.h"

using namespace lightne;  // NOLINT

int main(int argc, char** argv) {
  auto cli = CommandLine::Parse(argc, argv);
  if (!cli.ok()) return 1;

  WeightedEdgeList edges;
  const std::string path = cli->GetString("edges");
  if (!path.empty()) {
    auto loaded = LoadWeightedEdgeListText(path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    edges = std::move(*loaded);
    std::printf("loaded %zu weighted edges from %s\n", edges.edges.size(),
                path.c_str());
  } else {
    const NodeId n = static_cast<NodeId>(cli->GetInt("nodes", 2000));
    edges.num_vertices = n;
    Rng rng(7);
    for (NodeId e = 0; e < n * 20; ++e) {
      NodeId u = static_cast<NodeId>(rng.UniformInt(n));
      NodeId v = static_cast<NodeId>(rng.UniformInt(n));
      if (u == v) continue;
      const bool same = (u < n / 2) == (v < n / 2);
      edges.Add(u, v, same ? 8.0f : 1.0f);
    }
    std::printf("generated a 2-block graph: uniform topology, intra-block "
                "edges 8x heavier\n");
  }
  WeightedCsrGraph graph = WeightedCsrGraph::FromEdges(std::move(edges));
  std::printf("graph: %u vertices, %llu edges, vol(G) = %.0f\n",
              graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumUndirectedEdges()),
              graph.Volume());

  LightNeOptions opt;
  opt.dim = static_cast<uint64_t>(cli->GetInt("dim", 16));
  opt.window = 5;
  opt.samples_ratio = 4.0;
  Timer timer;
  auto result = RunLightNe(graph, opt);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("embedded in %.1f s (%llu samples accepted)\n", timer.Seconds(),
              static_cast<unsigned long long>(
                  result->sparsifier_stats.samples_accepted));

  // Recoverability check (synthetic mode only): same-block vs cross-block
  // cosine similarity.
  if (path.empty()) {
    Matrix x = result->embedding;
    x.NormalizeRows();
    const NodeId n = graph.NumVertices();
    Rng rng(13);
    double intra = 0, inter = 0;
    int ic = 0, oc = 0;
    for (int t = 0; t < 50000; ++t) {
      NodeId a = static_cast<NodeId>(rng.UniformInt(n));
      NodeId b = static_cast<NodeId>(rng.UniformInt(n));
      if (a == b) continue;
      double dot = 0;
      for (uint64_t j = 0; j < x.cols(); ++j) {
        dot += static_cast<double>(x.At(a, j)) * x.At(b, j);
      }
      if ((a < n / 2) == (b < n / 2)) {
        intra += dot;
        ++ic;
      } else {
        inter += dot;
        ++oc;
      }
    }
    std::printf("mean cosine similarity: same-block %.3f, cross-block %.3f "
                "(the gap comes entirely from edge weights)\n",
                intra / ic, inter / oc);
  }
  return 0;
}
