// Link prediction with the PBG evaluation protocol (the paper's LiveJournal
// comparison, §5.2.1): hold out a fraction of edges, embed the training
// graph, rank each held-out edge among corrupted candidates, and report MR,
// MRR, HITS@10 and AUC.
//
//   link_prediction [--scale 15] [--edges 400000] [--dim 64] [--window 5]
//                   [--holdout 0.001] [--negatives 1000]
#include <cstdio>

#include "core/lightne.h"
#include "data/generators.h"
#include "eval/link_prediction.h"
#include "graph/csr.h"
#include "util/cli.h"

using namespace lightne;  // NOLINT

int main(int argc, char** argv) {
  auto cli = CommandLine::Parse(argc, argv);
  if (!cli.ok()) return 1;
  const int scale = static_cast<int>(cli->GetInt("scale", 15));
  const EdgeId edges = static_cast<EdgeId>(cli->GetInt("edges", 400000));
  const double holdout = cli->GetDouble("holdout", 0.001);
  const uint64_t seed = 11;

  EdgeList raw = GenerateRmat(scale, edges, seed);
  SymmetrizeAndClean(&raw);
  EdgeSplit split = SplitEdges(raw, holdout, seed);
  std::printf("graph: %u vertices, %zu train directed edges, %zu held-out "
              "positives\n",
              raw.num_vertices, split.train.edges.size(),
              split.test_positives.size());
  CsrGraph train = CsrGraph::FromCleanEdgeList(split.train);

  LightNeOptions opt;
  opt.dim = static_cast<uint64_t>(cli->GetInt("dim", 64));
  opt.window = static_cast<uint32_t>(cli->GetInt("window", 5));
  opt.samples_ratio = cli->GetDouble("ratio", 2.0);
  Timer timer;
  auto result = RunLightNe(train, opt);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("embedded in %.1f s (sparsifier %.1f, rsvd %.1f, "
              "propagation %.1f)\n",
              timer.Seconds(), result->timing.SecondsFor("sparsifier"),
              result->timing.SecondsFor("rsvd"),
              result->timing.SecondsFor("propagation"));

  const uint32_t negatives =
      static_cast<uint32_t>(cli->GetInt("negatives", 1000));
  RankingMetrics metrics = EvaluateRanking(
      result->embedding, split.test_positives, negatives, {1, 10, 50}, seed);
  const double auc =
      EvaluateAuc(result->embedding, split.test_positives, seed);
  std::printf("\nMR        %8.2f\nMRR       %8.4f\nHITS@1    %8.4f\n"
              "HITS@10   %8.4f\nHITS@50   %8.4f\nAUC       %8.4f\n",
              metrics.mean_rank, metrics.mean_reciprocal_rank,
              metrics.hits_at[0], metrics.hits_at[1], metrics.hits_at[2],
              auc);
  return 0;
}
