// Tour of the parallel graph-processing substrate the embedding system is
// built on (the GBBS layer): BFS over the Ligra frontier interface with
// direction switching, PageRank, connected components, k-core decomposition,
// triangle counting / clustering coefficient, and the compression ratio —
// on any edge-list file or a generated graph.
//
//   graph_analytics [--edges FILE] [--scale 16] [--source 0]
#include <algorithm>
#include <cstdio>

#include "data/generators.h"
#include "graph/bfs.h"
#include "graph/compressed.h"
#include "graph/csr.h"
#include "graph/io.h"
#include "graph/kcore.h"
#include "graph/pagerank.h"
#include "graph/stats.h"
#include "graph/triangles.h"
#include "util/cli.h"
#include "util/memory.h"
#include "util/timer.h"

using namespace lightne;  // NOLINT

int main(int argc, char** argv) {
  auto cli = CommandLine::Parse(argc, argv);
  if (!cli.ok()) return 1;

  EdgeList edges;
  const std::string path = cli->GetString("edges");
  if (!path.empty()) {
    auto loaded = LoadEdgeListText(path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    edges = std::move(*loaded);
  } else {
    const int scale = static_cast<int>(cli->GetInt("scale", 16));
    edges = GenerateRmat(scale, static_cast<EdgeId>(1) << (scale + 4), 11);
    std::printf("generated RMAT 2^%d\n", scale);
  }
  CsrGraph g = CsrGraph::FromEdges(std::move(edges));

  Timer timer;
  GraphStats stats = ComputeStats(g);
  std::printf("\n-- structure (%.2f s) --\n", timer.Seconds());
  std::printf("vertices            %u\n", stats.num_vertices);
  std::printf("edges               %llu\n",
              static_cast<unsigned long long>(stats.num_undirected_edges));
  std::printf("max / avg degree    %llu / %.1f\n",
              static_cast<unsigned long long>(stats.max_degree),
              stats.avg_degree);
  std::printf("components          %u (largest %u, isolated %u)\n",
              stats.num_components, stats.largest_component,
              stats.num_isolated);

  timer.Restart();
  NodeId source = static_cast<NodeId>(cli->GetInt("source", 0));
  while (source < g.NumVertices() && g.Degree(source) == 0) ++source;
  BfsResult bfs = Bfs(g, source);
  std::printf("\n-- BFS from %u (%.2f s) --\n", source, timer.Seconds());
  std::printf("reached             %llu vertices in %u rounds\n",
              static_cast<unsigned long long>(bfs.num_reached),
              bfs.num_rounds);

  timer.Restart();
  PageRankResult pr = PageRank(g);
  NodeId top = 0;
  for (NodeId v = 1; v < g.NumVertices(); ++v) {
    if (pr.rank[v] > pr.rank[top]) top = v;
  }
  std::printf("\n-- PageRank (%.2f s, %u iterations) --\n", timer.Seconds(),
              pr.iterations);
  std::printf("top vertex          %u (rank %.6f, degree %llu)\n", top,
              pr.rank[top], static_cast<unsigned long long>(g.Degree(top)));

  timer.Restart();
  KCoreResult kcore = KCoreDecomposition(g);
  std::printf("\n-- k-core (%.2f s) --\n", timer.Seconds());
  std::printf("degeneracy          %u\n", kcore.max_core);

  timer.Restart();
  TriangleResult tri = CountTriangles(g);
  std::printf("\n-- triangles (%.2f s) --\n", timer.Seconds());
  std::printf("triangles           %llu\n",
              static_cast<unsigned long long>(tri.triangles));
  std::printf("global clustering   %.4f\n", tri.global_clustering);

  timer.Restart();
  CompressedGraph cg = CompressedGraph::FromCsr(g, 64);
  std::printf("\n-- compression (%.2f s) --\n", timer.Seconds());
  std::printf("raw CSR             %s\n", HumanBytes(g.SizeBytes()).c_str());
  std::printf("parallel-byte       %s (%.1f%%)\n",
              HumanBytes(cg.SizeBytes()).c_str(),
              100.0 * cg.SizeBytes() / g.SizeBytes());
  return 0;
}
