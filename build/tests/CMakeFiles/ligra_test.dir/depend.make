# Empty dependencies file for ligra_test.
# This may be replaced when dependencies are built.
