file(REMOVE_RECURSE
  "CMakeFiles/ligra_test.dir/ligra_test.cc.o"
  "CMakeFiles/ligra_test.dir/ligra_test.cc.o.d"
  "ligra_test"
  "ligra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ligra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
