# Empty compiler generated dependencies file for ligra_test.
# This may be replaced when dependencies are built.
