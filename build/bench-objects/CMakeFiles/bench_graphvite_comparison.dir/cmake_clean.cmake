file(REMOVE_RECURSE
  "../bench/bench_graphvite_comparison"
  "../bench/bench_graphvite_comparison.pdb"
  "CMakeFiles/bench_graphvite_comparison.dir/bench_graphvite_comparison.cc.o"
  "CMakeFiles/bench_graphvite_comparison.dir/bench_graphvite_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graphvite_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
