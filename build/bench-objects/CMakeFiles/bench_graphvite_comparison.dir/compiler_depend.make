# Empty compiler generated dependencies file for bench_graphvite_comparison.
# This may be replaced when dependencies are built.
