# Empty dependencies file for bench_tradeoff_fig2.
# This may be replaced when dependencies are built.
