file(REMOVE_RECURSE
  "../bench/bench_batched_walks"
  "../bench/bench_batched_walks.pdb"
  "CMakeFiles/bench_batched_walks.dir/bench_batched_walks.cc.o"
  "CMakeFiles/bench_batched_walks.dir/bench_batched_walks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_batched_walks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
