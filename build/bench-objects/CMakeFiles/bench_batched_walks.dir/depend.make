# Empty dependencies file for bench_batched_walks.
# This may be replaced when dependencies are built.
