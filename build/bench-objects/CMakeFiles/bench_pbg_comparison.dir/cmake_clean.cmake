file(REMOVE_RECURSE
  "../bench/bench_pbg_comparison"
  "../bench/bench_pbg_comparison.pdb"
  "CMakeFiles/bench_pbg_comparison.dir/bench_pbg_comparison.cc.o"
  "CMakeFiles/bench_pbg_comparison.dir/bench_pbg_comparison.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pbg_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
