file(REMOVE_RECURSE
  "../bench/bench_ablation_samples"
  "../bench/bench_ablation_samples.pdb"
  "CMakeFiles/bench_ablation_samples.dir/bench_ablation_samples.cc.o"
  "CMakeFiles/bench_ablation_samples.dir/bench_ablation_samples.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_samples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
