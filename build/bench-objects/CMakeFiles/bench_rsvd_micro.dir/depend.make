# Empty dependencies file for bench_rsvd_micro.
# This may be replaced when dependencies are built.
