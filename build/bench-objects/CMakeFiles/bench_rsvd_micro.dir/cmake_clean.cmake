file(REMOVE_RECURSE
  "../bench/bench_rsvd_micro"
  "../bench/bench_rsvd_micro.pdb"
  "CMakeFiles/bench_rsvd_micro.dir/bench_rsvd_micro.cc.o"
  "CMakeFiles/bench_rsvd_micro.dir/bench_rsvd_micro.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rsvd_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
