
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_cost_model.cc" "bench-objects/CMakeFiles/bench_cost_model.dir/bench_cost_model.cc.o" "gcc" "bench-objects/CMakeFiles/bench_cost_model.dir/bench_cost_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/lightne_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/la/CMakeFiles/lightne_la.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/lightne_data.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lightne_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/lightne_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lightne_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
