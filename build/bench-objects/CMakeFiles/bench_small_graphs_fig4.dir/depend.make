# Empty dependencies file for bench_small_graphs_fig4.
# This may be replaced when dependencies are built.
