file(REMOVE_RECURSE
  "../bench/bench_small_graphs_fig4"
  "../bench/bench_small_graphs_fig4.pdb"
  "CMakeFiles/bench_small_graphs_fig4.dir/bench_small_graphs_fig4.cc.o"
  "CMakeFiles/bench_small_graphs_fig4.dir/bench_small_graphs_fig4.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_small_graphs_fig4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
