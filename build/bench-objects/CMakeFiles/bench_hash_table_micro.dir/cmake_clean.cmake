file(REMOVE_RECURSE
  "../bench/bench_hash_table_micro"
  "../bench/bench_hash_table_micro.pdb"
  "CMakeFiles/bench_hash_table_micro.dir/bench_hash_table_micro.cc.o"
  "CMakeFiles/bench_hash_table_micro.dir/bench_hash_table_micro.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hash_table_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
