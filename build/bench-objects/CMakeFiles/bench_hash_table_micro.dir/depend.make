# Empty dependencies file for bench_hash_table_micro.
# This may be replaced when dependencies are built.
