file(REMOVE_RECURSE
  "../bench/bench_time_breakdown"
  "../bench/bench_time_breakdown.pdb"
  "CMakeFiles/bench_time_breakdown.dir/bench_time_breakdown.cc.o"
  "CMakeFiles/bench_time_breakdown.dir/bench_time_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_time_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
