# Empty compiler generated dependencies file for lightne_la.
# This may be replaced when dependencies are built.
