
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/la/embedding_io.cc" "src/la/CMakeFiles/lightne_la.dir/embedding_io.cc.o" "gcc" "src/la/CMakeFiles/lightne_la.dir/embedding_io.cc.o.d"
  "/root/repo/src/la/matrix.cc" "src/la/CMakeFiles/lightne_la.dir/matrix.cc.o" "gcc" "src/la/CMakeFiles/lightne_la.dir/matrix.cc.o.d"
  "/root/repo/src/la/qr.cc" "src/la/CMakeFiles/lightne_la.dir/qr.cc.o" "gcc" "src/la/CMakeFiles/lightne_la.dir/qr.cc.o.d"
  "/root/repo/src/la/rsvd.cc" "src/la/CMakeFiles/lightne_la.dir/rsvd.cc.o" "gcc" "src/la/CMakeFiles/lightne_la.dir/rsvd.cc.o.d"
  "/root/repo/src/la/sparse.cc" "src/la/CMakeFiles/lightne_la.dir/sparse.cc.o" "gcc" "src/la/CMakeFiles/lightne_la.dir/sparse.cc.o.d"
  "/root/repo/src/la/special.cc" "src/la/CMakeFiles/lightne_la.dir/special.cc.o" "gcc" "src/la/CMakeFiles/lightne_la.dir/special.cc.o.d"
  "/root/repo/src/la/svd.cc" "src/la/CMakeFiles/lightne_la.dir/svd.cc.o" "gcc" "src/la/CMakeFiles/lightne_la.dir/svd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parallel/CMakeFiles/lightne_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lightne_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
