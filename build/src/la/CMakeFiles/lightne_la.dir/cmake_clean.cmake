file(REMOVE_RECURSE
  "CMakeFiles/lightne_la.dir/embedding_io.cc.o"
  "CMakeFiles/lightne_la.dir/embedding_io.cc.o.d"
  "CMakeFiles/lightne_la.dir/matrix.cc.o"
  "CMakeFiles/lightne_la.dir/matrix.cc.o.d"
  "CMakeFiles/lightne_la.dir/qr.cc.o"
  "CMakeFiles/lightne_la.dir/qr.cc.o.d"
  "CMakeFiles/lightne_la.dir/rsvd.cc.o"
  "CMakeFiles/lightne_la.dir/rsvd.cc.o.d"
  "CMakeFiles/lightne_la.dir/sparse.cc.o"
  "CMakeFiles/lightne_la.dir/sparse.cc.o.d"
  "CMakeFiles/lightne_la.dir/special.cc.o"
  "CMakeFiles/lightne_la.dir/special.cc.o.d"
  "CMakeFiles/lightne_la.dir/svd.cc.o"
  "CMakeFiles/lightne_la.dir/svd.cc.o.d"
  "liblightne_la.a"
  "liblightne_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightne_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
