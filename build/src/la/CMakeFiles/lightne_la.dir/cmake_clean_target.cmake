file(REMOVE_RECURSE
  "liblightne_la.a"
)
