file(REMOVE_RECURSE
  "CMakeFiles/lightne_util.dir/cli.cc.o"
  "CMakeFiles/lightne_util.dir/cli.cc.o.d"
  "CMakeFiles/lightne_util.dir/logging.cc.o"
  "CMakeFiles/lightne_util.dir/logging.cc.o.d"
  "CMakeFiles/lightne_util.dir/memory.cc.o"
  "CMakeFiles/lightne_util.dir/memory.cc.o.d"
  "CMakeFiles/lightne_util.dir/status.cc.o"
  "CMakeFiles/lightne_util.dir/status.cc.o.d"
  "liblightne_util.a"
  "liblightne_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightne_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
