# Empty dependencies file for lightne_util.
# This may be replaced when dependencies are built.
