file(REMOVE_RECURSE
  "liblightne_util.a"
)
