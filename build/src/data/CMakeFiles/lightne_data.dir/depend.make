# Empty dependencies file for lightne_data.
# This may be replaced when dependencies are built.
