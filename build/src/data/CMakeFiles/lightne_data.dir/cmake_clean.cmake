file(REMOVE_RECURSE
  "CMakeFiles/lightne_data.dir/datasets.cc.o"
  "CMakeFiles/lightne_data.dir/datasets.cc.o.d"
  "CMakeFiles/lightne_data.dir/generators.cc.o"
  "CMakeFiles/lightne_data.dir/generators.cc.o.d"
  "CMakeFiles/lightne_data.dir/labels.cc.o"
  "CMakeFiles/lightne_data.dir/labels.cc.o.d"
  "liblightne_data.a"
  "liblightne_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightne_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
