file(REMOVE_RECURSE
  "liblightne_data.a"
)
