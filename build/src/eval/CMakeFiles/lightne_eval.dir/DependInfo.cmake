
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/classification.cc" "src/eval/CMakeFiles/lightne_eval.dir/classification.cc.o" "gcc" "src/eval/CMakeFiles/lightne_eval.dir/classification.cc.o.d"
  "/root/repo/src/eval/cost_model.cc" "src/eval/CMakeFiles/lightne_eval.dir/cost_model.cc.o" "gcc" "src/eval/CMakeFiles/lightne_eval.dir/cost_model.cc.o.d"
  "/root/repo/src/eval/embedding_quality.cc" "src/eval/CMakeFiles/lightne_eval.dir/embedding_quality.cc.o" "gcc" "src/eval/CMakeFiles/lightne_eval.dir/embedding_quality.cc.o.d"
  "/root/repo/src/eval/link_prediction.cc" "src/eval/CMakeFiles/lightne_eval.dir/link_prediction.cc.o" "gcc" "src/eval/CMakeFiles/lightne_eval.dir/link_prediction.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/la/CMakeFiles/lightne_la.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lightne_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/lightne_data.dir/DependInfo.cmake"
  "/root/repo/build/src/parallel/CMakeFiles/lightne_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lightne_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
