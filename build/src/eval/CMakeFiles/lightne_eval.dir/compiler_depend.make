# Empty compiler generated dependencies file for lightne_eval.
# This may be replaced when dependencies are built.
