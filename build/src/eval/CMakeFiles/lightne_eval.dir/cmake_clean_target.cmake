file(REMOVE_RECURSE
  "liblightne_eval.a"
)
