file(REMOVE_RECURSE
  "CMakeFiles/lightne_eval.dir/classification.cc.o"
  "CMakeFiles/lightne_eval.dir/classification.cc.o.d"
  "CMakeFiles/lightne_eval.dir/cost_model.cc.o"
  "CMakeFiles/lightne_eval.dir/cost_model.cc.o.d"
  "CMakeFiles/lightne_eval.dir/embedding_quality.cc.o"
  "CMakeFiles/lightne_eval.dir/embedding_quality.cc.o.d"
  "CMakeFiles/lightne_eval.dir/link_prediction.cc.o"
  "CMakeFiles/lightne_eval.dir/link_prediction.cc.o.d"
  "liblightne_eval.a"
  "liblightne_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightne_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
