# Empty dependencies file for lightne_baselines.
# This may be replaced when dependencies are built.
