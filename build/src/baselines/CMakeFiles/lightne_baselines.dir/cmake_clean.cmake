file(REMOVE_RECURSE
  "CMakeFiles/lightne_baselines.dir/alias.cc.o"
  "CMakeFiles/lightne_baselines.dir/alias.cc.o.d"
  "CMakeFiles/lightne_baselines.dir/sgns.cc.o"
  "CMakeFiles/lightne_baselines.dir/sgns.cc.o.d"
  "liblightne_baselines.a"
  "liblightne_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightne_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
