file(REMOVE_RECURSE
  "liblightne_baselines.a"
)
