# Empty dependencies file for lightne_core.
# This may be replaced when dependencies are built.
