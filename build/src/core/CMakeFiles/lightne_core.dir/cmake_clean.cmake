file(REMOVE_RECURSE
  "CMakeFiles/lightne_core.dir/aggregation.cc.o"
  "CMakeFiles/lightne_core.dir/aggregation.cc.o.d"
  "CMakeFiles/lightne_core.dir/spectral_propagation.cc.o"
  "CMakeFiles/lightne_core.dir/spectral_propagation.cc.o.d"
  "liblightne_core.a"
  "liblightne_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightne_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
