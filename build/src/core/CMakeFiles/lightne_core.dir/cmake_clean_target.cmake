file(REMOVE_RECURSE
  "liblightne_core.a"
)
