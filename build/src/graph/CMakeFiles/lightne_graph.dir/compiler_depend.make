# Empty compiler generated dependencies file for lightne_graph.
# This may be replaced when dependencies are built.
