file(REMOVE_RECURSE
  "CMakeFiles/lightne_graph.dir/compressed.cc.o"
  "CMakeFiles/lightne_graph.dir/compressed.cc.o.d"
  "CMakeFiles/lightne_graph.dir/csr.cc.o"
  "CMakeFiles/lightne_graph.dir/csr.cc.o.d"
  "CMakeFiles/lightne_graph.dir/dynamic.cc.o"
  "CMakeFiles/lightne_graph.dir/dynamic.cc.o.d"
  "CMakeFiles/lightne_graph.dir/edge_list.cc.o"
  "CMakeFiles/lightne_graph.dir/edge_list.cc.o.d"
  "CMakeFiles/lightne_graph.dir/io.cc.o"
  "CMakeFiles/lightne_graph.dir/io.cc.o.d"
  "CMakeFiles/lightne_graph.dir/kcore.cc.o"
  "CMakeFiles/lightne_graph.dir/kcore.cc.o.d"
  "CMakeFiles/lightne_graph.dir/stats.cc.o"
  "CMakeFiles/lightne_graph.dir/stats.cc.o.d"
  "CMakeFiles/lightne_graph.dir/triangles.cc.o"
  "CMakeFiles/lightne_graph.dir/triangles.cc.o.d"
  "CMakeFiles/lightne_graph.dir/weighted_csr.cc.o"
  "CMakeFiles/lightne_graph.dir/weighted_csr.cc.o.d"
  "liblightne_graph.a"
  "liblightne_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightne_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
