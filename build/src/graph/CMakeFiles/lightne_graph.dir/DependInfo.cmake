
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/compressed.cc" "src/graph/CMakeFiles/lightne_graph.dir/compressed.cc.o" "gcc" "src/graph/CMakeFiles/lightne_graph.dir/compressed.cc.o.d"
  "/root/repo/src/graph/csr.cc" "src/graph/CMakeFiles/lightne_graph.dir/csr.cc.o" "gcc" "src/graph/CMakeFiles/lightne_graph.dir/csr.cc.o.d"
  "/root/repo/src/graph/dynamic.cc" "src/graph/CMakeFiles/lightne_graph.dir/dynamic.cc.o" "gcc" "src/graph/CMakeFiles/lightne_graph.dir/dynamic.cc.o.d"
  "/root/repo/src/graph/edge_list.cc" "src/graph/CMakeFiles/lightne_graph.dir/edge_list.cc.o" "gcc" "src/graph/CMakeFiles/lightne_graph.dir/edge_list.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/graph/CMakeFiles/lightne_graph.dir/io.cc.o" "gcc" "src/graph/CMakeFiles/lightne_graph.dir/io.cc.o.d"
  "/root/repo/src/graph/kcore.cc" "src/graph/CMakeFiles/lightne_graph.dir/kcore.cc.o" "gcc" "src/graph/CMakeFiles/lightne_graph.dir/kcore.cc.o.d"
  "/root/repo/src/graph/stats.cc" "src/graph/CMakeFiles/lightne_graph.dir/stats.cc.o" "gcc" "src/graph/CMakeFiles/lightne_graph.dir/stats.cc.o.d"
  "/root/repo/src/graph/triangles.cc" "src/graph/CMakeFiles/lightne_graph.dir/triangles.cc.o" "gcc" "src/graph/CMakeFiles/lightne_graph.dir/triangles.cc.o.d"
  "/root/repo/src/graph/weighted_csr.cc" "src/graph/CMakeFiles/lightne_graph.dir/weighted_csr.cc.o" "gcc" "src/graph/CMakeFiles/lightne_graph.dir/weighted_csr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/parallel/CMakeFiles/lightne_parallel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lightne_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
