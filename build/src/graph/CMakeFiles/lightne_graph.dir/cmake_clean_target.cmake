file(REMOVE_RECURSE
  "liblightne_graph.a"
)
