file(REMOVE_RECURSE
  "liblightne_parallel.a"
)
