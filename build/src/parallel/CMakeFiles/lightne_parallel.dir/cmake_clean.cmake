file(REMOVE_RECURSE
  "CMakeFiles/lightne_parallel.dir/thread_pool.cc.o"
  "CMakeFiles/lightne_parallel.dir/thread_pool.cc.o.d"
  "liblightne_parallel.a"
  "liblightne_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lightne_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
