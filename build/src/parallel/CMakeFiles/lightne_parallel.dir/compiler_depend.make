# Empty compiler generated dependencies file for lightne_parallel.
# This may be replaced when dependencies are built.
