# Empty dependencies file for node_classification.
# This may be replaced when dependencies are built.
