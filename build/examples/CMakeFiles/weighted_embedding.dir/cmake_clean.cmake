file(REMOVE_RECURSE
  "CMakeFiles/weighted_embedding.dir/weighted_embedding.cpp.o"
  "CMakeFiles/weighted_embedding.dir/weighted_embedding.cpp.o.d"
  "weighted_embedding"
  "weighted_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
