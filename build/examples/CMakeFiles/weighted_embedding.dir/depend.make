# Empty dependencies file for weighted_embedding.
# This may be replaced when dependencies are built.
