file(REMOVE_RECURSE
  "CMakeFiles/billion_scale.dir/billion_scale.cpp.o"
  "CMakeFiles/billion_scale.dir/billion_scale.cpp.o.d"
  "billion_scale"
  "billion_scale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/billion_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
