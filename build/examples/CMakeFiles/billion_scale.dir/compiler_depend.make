# Empty compiler generated dependencies file for billion_scale.
# This may be replaced when dependencies are built.
