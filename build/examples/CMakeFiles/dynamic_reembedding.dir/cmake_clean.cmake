file(REMOVE_RECURSE
  "CMakeFiles/dynamic_reembedding.dir/dynamic_reembedding.cpp.o"
  "CMakeFiles/dynamic_reembedding.dir/dynamic_reembedding.cpp.o.d"
  "dynamic_reembedding"
  "dynamic_reembedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_reembedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
