# Empty dependencies file for dynamic_reembedding.
# This may be replaced when dependencies are built.
