"""Tests for the repo-invariant linter.

Fixtures live under testdata/{bad,good}/, each a miniature repo tree. Every
bad fixture declares the rule it must trip in a leading `// expect-lint:
<rule>` (or `# expect-lint:` for CMake) comment; the test fails if that rule
does not fire on that file, or if any *other* file trips it, so both false
negatives and false positives in a rule break the suite (registered as the
`lint_selftest` ctest — a broken rule fails tier-1).
"""

import os
import re
import unittest

import lightne_lint

HERE = os.path.dirname(os.path.abspath(__file__))
BAD_ROOT = os.path.join(HERE, "testdata", "bad")
GOOD_ROOT = os.path.join(HERE, "testdata", "good")

EXPECT_RE = re.compile(r"expect-lint:\s*([a-z]+)")


def expected_rules(root):
    """Maps repo-relative fixture path -> rule it must trip."""
    expectations = {}
    for rel in lightne_lint.discover(root):
        full = os.path.join(root, rel)
        if not os.path.isfile(full):
            continue
        with open(full, encoding="utf-8") as fh:
            m = EXPECT_RE.search(fh.read())
        if m:
            expectations[rel] = m.group(1)
    return expectations


class BadFixtures(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.findings = lightne_lint.scan_repo(BAD_ROOT)
        cls.expected = expected_rules(BAD_ROOT)

    def test_every_rule_has_a_bad_fixture(self):
        self.assertEqual(set(self.expected.values()),
                         set(lightne_lint.RULES),
                         "each lint rule needs at least one bad fixture")

    def test_each_bad_fixture_trips_its_rule(self):
        for path, rule in self.expected.items():
            with self.subTest(fixture=path):
                hits = [f for f in self.findings
                        if f.path == path and f.rule == rule]
                self.assertTrue(
                    hits, f"{path} should trip rule '{rule}' but did not")

    def test_no_unexpected_rules_fire(self):
        for f in self.findings:
            with self.subTest(finding=f):
                self.assertEqual(
                    f.rule, self.expected.get(f.path),
                    f"{f.path}:{f.line} tripped unexpected rule "
                    f"'{f.rule}': {f.message}")


class GoodFixtures(unittest.TestCase):
    def test_good_tree_is_clean(self):
        findings = lightne_lint.scan_repo(GOOD_ROOT)
        self.assertEqual(
            [], findings,
            "good fixtures must produce zero findings:\n" +
            "\n".join(f"{f.path}:{f.line}: [{f.rule}]" for f in findings))


class StrippingInternals(unittest.TestCase):
    def test_comments_and_strings_are_blanked(self):
        stripped = lightne_lint.strip_comments_and_strings(
            'int x = 1; // std::rand()\n'
            'const char* s = "std::rand()";\n'
            '/* std::mt19937 */ int y = 2;\n')
        self.assertNotIn("rand", stripped)
        self.assertNotIn("mt19937", stripped)
        self.assertIn("int x = 1;", stripped)
        self.assertIn("int y = 2;", stripped)

    def test_newlines_survive_for_line_numbers(self):
        raw = 'a /* multi\nline\ncomment */ b\n'
        stripped = lightne_lint.strip_comments_and_strings(raw)
        self.assertEqual(raw.count("\n"), stripped.count("\n"))

    def test_escaped_quote_in_string(self):
        stripped = lightne_lint.strip_comments_and_strings(
            'f("a\\"b srand("); srand(1);\n')
        self.assertEqual(stripped.count("srand"), 1)


class StatusRuleInternals(unittest.TestCase):
    def lint_source(self, body):
        f = lightne_lint.SourceFile("src/graph/x.cc", body)
        names = lightne_lint.collect_status_names([f])
        return list(lightne_lint.check_status(f, names))

    DECLS = "class Status {};\nStatus Op();\nStatus Other(int v);\n"

    def test_bare_call_is_flagged(self):
        findings = self.lint_source(self.DECLS + "void F() {\n  Op();\n}\n")
        self.assertEqual(1, len(findings))
        self.assertEqual("status", findings[0].rule)
        self.assertEqual(5, findings[0].line)

    def test_multiline_bare_call_is_flagged(self):
        findings = self.lint_source(
            self.DECLS + "void F() {\n  Other(\n      42);\n}\n")
        self.assertEqual(1, len(findings))

    def test_consumed_calls_are_not_flagged(self):
        findings = self.lint_source(
            self.DECLS +
            "Status F() {\n"
            "  Status s = Op();\n"
            "  (void)Op();\n"
            "  if (!Other(1).ok()) return Op();\n"
            "  return Other(2);\n"
            "}\n")
        self.assertEqual([], findings)

    def test_object_chain_drop_is_flagged(self):
        body = (
            "class Status {};\n"
            "struct S { Status Op(); };\n"
            "void F(S* s) {\n  s->Op();\n}\n")
        findings = self.lint_source(body)
        self.assertEqual(1, len(findings))
        self.assertEqual(4, findings[0].line)


class AtomicioRuleInternals(unittest.TestCase):
    def lint_source(self, path, body):
        f = lightne_lint.SourceFile(path, body)
        return list(lightne_lint.check_atomicio(f))

    def test_ofstream_is_flagged(self):
        findings = self.lint_source(
            "src/core/x.cc", "#include <fstream>\nstd::ofstream out(p);\n")
        self.assertEqual(1, len(findings))
        self.assertEqual("atomicio", findings[0].rule)
        self.assertEqual(2, findings[0].line)

    def test_write_modes_are_flagged(self):
        for mode in ('"w"', '"wb"', '"a"', '"ab"', '"w+"', '"r+b"'):
            with self.subTest(mode=mode):
                findings = self.lint_source(
                    "bench/x.cc", f"void F() {{ fopen(p, {mode}); }}\n")
                self.assertEqual(1, len(findings))

    def test_read_mode_is_not_flagged(self):
        for mode in ('"r"', '"rb"'):
            with self.subTest(mode=mode):
                self.assertEqual([], self.lint_source(
                    "examples/x.cpp", f"void F() {{ fopen(p, {mode}); }}\n"))

    def test_variable_mode_is_not_flagged(self):
        # Mode not a literal: the linter cannot tell, so it stays quiet.
        self.assertEqual([], self.lint_source(
            "src/la/x.cc", "void F(const char* m) { fopen(p, m); }\n"))

    def test_tests_are_out_of_scope(self):
        self.assertEqual([], self.lint_source(
            "tests/x.cc", "std::ofstream out(p);\nfopen(p, \"w\");\n"))

    def test_artifact_io_is_exempt(self):
        self.assertEqual([], self.lint_source(
            "src/util/artifact_io.cc", "fopen(p, \"wb\");\n"))

    def test_fopen_in_comment_is_not_flagged(self):
        self.assertEqual([], self.lint_source(
            "src/core/x.cc", "// fopen(p, \"w\") would be wrong here\n"))


class SuppressionInternals(unittest.TestCase):
    def test_suppression_is_line_and_rule_scoped(self):
        f = lightne_lint.SourceFile(
            "src/util/x.cc",
            "int a = std::rand();  // lint-ok: random (why)\n"
            "int b = std::rand();\n")
        findings = [x for x in lightne_lint.check_random(f)
                    if not f.suppresses(x.line, x.rule)]
        self.assertEqual(1, len(findings))
        self.assertEqual(2, findings[0].line)


class StatementStartInternals(unittest.TestCase):
    SOURCE = (
        "void F() {\n"
        "  Use(1,\n"
        "      std::time(nullptr));\n"
        "}\n")

    def test_multiline_statement_points_at_start(self):
        f = lightne_lint.SourceFile("bench/x.cc", self.SOURCE)
        findings = list(lightne_lint.check_random(f))
        self.assertEqual(1, len(findings))
        self.assertEqual(2, findings[0].line)        # statement start
        self.assertEqual(3, findings[0].match_line)  # offending token

    def test_suppression_works_on_either_line(self):
        for lineno in (2, 3):
            with self.subTest(comment_line=lineno):
                lines = self.SOURCE.splitlines(keepends=True)
                lines[lineno - 1] = (lines[lineno - 1].rstrip("\n")
                                     + "  // lint-ok: random (timestamp)\n")
                f = lightne_lint.SourceFile("bench/x.cc", "".join(lines))
                self.assertEqual([], lightne_lint.lint_files([f]))

    def test_preprocessor_line_is_its_own_statement(self):
        f = lightne_lint.SourceFile(
            "src/core/x.cc", "#include <fstream>\nstd::ofstream out(p);\n")
        findings = list(lightne_lint.check_atomicio(f))
        self.assertEqual(1, len(findings))
        self.assertEqual(2, findings[0].line)


def _index(path, body):
    return lightne_lint.FileIndex(lightne_lint.SourceFile(path, body))


class ParfloatInternals(unittest.TestCase):
    def lint(self, body, path="src/core/x.cc"):
        return list(lightne_lint.check_parfloat(_index(path, body)))

    def test_captured_float_accumulate_is_flagged(self):
        findings = self.lint(
            "double Total(const double* x, uint64_t n) {\n"
            "  double sum = 0.0;\n"
            "  ParallelFor(0, n, [&](uint64_t i) { sum += x[i]; });\n"
            "  return sum;\n"
            "}\n")
        self.assertEqual(1, len(findings))
        self.assertEqual("parfloat", findings[0].rule)

    def test_lambda_local_accumulator_is_not_flagged(self):
        self.assertEqual([], self.lint(
            "void F(const double* x, uint64_t n, double* out) {\n"
            "  ParallelFor(0, n, [&](uint64_t i) {\n"
            "    double acc = 0.0;\n"
            "    acc += x[i];\n"
            "    out[i] = acc;\n"
            "  });\n"
            "}\n"))

    def test_worker_partition_is_not_flagged(self):
        self.assertEqual([], self.lint(
            "void F(const double* x, uint64_t n, double* partial) {\n"
            "  ParallelForWorkers([&](int worker, int workers) {\n"
            "    partial[worker] += x[worker];\n"
            "  });\n"
            "}\n"))

    def test_gemm_row_pointer_idiom_is_not_flagged(self):
        self.assertEqual([], self.lint(
            "void F(float* c, uint64_t n, uint64_t cols) {\n"
            "  ParallelFor(0, n, [&](uint64_t i) {\n"
            "    float* ci = c + i * cols;\n"
            "    for (uint64_t j = 0; j < cols; ++j) ci[j] += 1.0f;\n"
            "  });\n"
            "}\n"))

    def test_fixed_point_counter_is_not_flagged(self):
        self.assertEqual([], self.lint(
            "void F(uint64_t n, uint64_t* mass_fp20) {\n"
            "  ParallelFor(0, n, [&](uint64_t i) { *mass_fp20 += i; });\n"
            "}\n"))

    def test_integer_accumulate_is_not_flagged(self):
        self.assertEqual([], self.lint(
            "void F(uint64_t n) {\n"
            "  uint64_t hits = 0;\n"
            "  ParallelFor(0, n, [&](uint64_t i) { hits += i; });\n"
            "}\n"))

    def test_out_of_scope_paths_are_quiet(self):
        self.assertEqual([], self.lint(
            "void F(const double* x, uint64_t n) {\n"
            "  double sum = 0.0;\n"
            "  ParallelFor(0, n, [&](uint64_t i) { sum += x[i]; });\n"
            "}\n", path="tests/x.cc"))


class RngflowInternals(unittest.TestCase):
    def lint(self, body, path="src/graph/x.cc"):
        return list(lightne_lint.check_rngflow(_index(path, body)))

    def test_short_circuit_draw_is_flagged(self):
        findings = self.lint(
            "uint64_t F(Rng& rng, bool gate, double p) {\n"
            "  if (gate && rng.Bernoulli(p)) return 1;\n"
            "  return 0;\n"
            "}\n")
        self.assertEqual(1, len(findings))
        self.assertIn("short-circuit", findings[0].message)

    def test_first_operand_draw_is_not_flagged(self):
        self.assertEqual([], self.lint(
            "uint64_t F(Rng& rng, bool gate, double p) {\n"
            "  if (rng.Bernoulli(p) && gate) return 1;\n"
            "  return 0;\n"
            "}\n"))

    def test_branch_body_draw_is_flagged(self):
        findings = self.lint(
            "uint64_t F(Rng& rng, bool gate) {\n"
            "  if (gate) {\n"
            "    return rng.UniformInt(7);\n"
            "  }\n"
            "  return 0;\n"
            "}\n")
        self.assertEqual(1, len(findings))

    def test_ternary_draw_is_flagged(self):
        findings = self.lint(
            "uint64_t F(Rng& rng, bool gate) {\n"
            "  return gate ? rng.UniformInt(7) : 0;\n"
            "}\n")
        self.assertEqual(1, len(findings))

    def test_for_body_draw_is_not_flagged(self):
        self.assertEqual([], self.lint(
            "uint64_t F(Rng& rng, uint64_t n) {\n"
            "  uint64_t acc = 0;\n"
            "  for (uint64_t i = 0; i < n; ++i) acc += rng.UniformInt(3);\n"
            "  return acc;\n"
            "}\n"))

    def test_captured_rng_in_parallel_lambda_is_flagged(self):
        findings = self.lint(
            "void F(Rng& rng, uint64_t n, uint64_t* out) {\n"
            "  ParallelFor(0, n, [&](uint64_t i) {\n"
            "    out[i] = rng.UniformInt(9);\n"
            "  });\n"
            "}\n", path="src/la/x.cc")
        self.assertEqual(1, len(findings))
        self.assertIn("captured", findings[0].message)

    def test_per_item_rng_is_not_flagged(self):
        self.assertEqual([], self.lint(
            "void F(uint64_t seed, uint64_t n, uint64_t* out) {\n"
            "  ParallelFor(0, n, [&](uint64_t i) {\n"
            "    Rng rng(HashCombine64(seed, i));\n"
            "    out[i] = rng.UniformInt(9);\n"
            "  });\n"
            "}\n"))

    def test_conditional_check_is_hot_path_scoped(self):
        # src/la is outside the sampling hot paths: the conditional-draw
        # check stays quiet there (the capture check still applies).
        self.assertEqual([], self.lint(
            "uint64_t F(Rng& rng, bool gate, double p) {\n"
            "  if (gate && rng.Bernoulli(p)) return 1;\n"
            "  return 0;\n"
            "}\n", path="src/la/x.cc"))


class LockorderInternals(unittest.TestCase):
    def lint(self, body, path="src/core/x.cc"):
        return lightne_lint.check_lockorder([_index(path, body)])

    DECLS = "Mutex g_mu_a;\nMutex g_mu_b;\n"

    def test_inversion_is_flagged_with_both_chains(self):
        findings = self.lint(
            self.DECLS +
            "void A() {\n"
            "  MutexLock ha(g_mu_a);\n"
            "  MutexLock hb(g_mu_b);\n"
            "}\n"
            "void B() {\n"
            "  MutexLock hb(g_mu_b);\n"
            "  MutexLock ha(g_mu_a);\n"
            "}\n")
        self.assertEqual(1, len(findings))
        self.assertEqual("lockorder", findings[0].rule)
        self.assertIn("g_mu_a", findings[0].message)
        self.assertIn("g_mu_b", findings[0].message)
        # Both acquisition chains are spelled out.
        self.assertEqual(2, findings[0].message.count("held from"))

    def test_consistent_order_is_clean(self):
        self.assertEqual([], self.lint(
            self.DECLS +
            "void A() {\n"
            "  MutexLock ha(g_mu_a);\n"
            "  MutexLock hb(g_mu_b);\n"
            "}\n"
            "void B() {\n"
            "  MutexLock ha(g_mu_a);\n"
            "  MutexLock hb(g_mu_b);\n"
            "}\n"))

    def test_transitive_cycle_through_a_call_is_flagged(self):
        findings = self.lint(
            self.DECLS +
            "void TakeB() {\n"
            "  MutexLock hb(g_mu_b);\n"
            "}\n"
            "void A() {\n"
            "  MutexLock ha(g_mu_a);\n"
            "  TakeB();\n"
            "}\n"
            "void B() {\n"
            "  MutexLock hb(g_mu_b);\n"
            "  MutexLock ha(g_mu_a);\n"
            "}\n")
        self.assertEqual(1, len(findings))
        self.assertIn("TakeB()", findings[0].message)

    def test_requires_annotation_seeds_the_held_set(self):
        findings = self.lint(
            self.DECLS +
            "void G() LIGHTNE_REQUIRES(g_mu_a) {\n"
            "  MutexLock hb(g_mu_b);\n"
            "}\n"
            "void K() {\n"
            "  MutexLock hb(g_mu_b);\n"
            "  MutexLock ha(g_mu_a);\n"
            "}\n")
        self.assertEqual(1, len(findings))
        self.assertIn("required held", findings[0].message)

    def test_function_local_mutexes_stay_distinct(self):
        # Each function's local `mu` is its own lock: nesting them in
        # opposite orders across functions is not a cycle.
        self.assertEqual([], self.lint(
            "void A() {\n"
            "  Mutex mu;\n"
            "  MutexLock h(mu);\n"
            "}\n"
            "void B() {\n"
            "  Mutex mu;\n"
            "  MutexLock h(mu);\n"
            "}\n"))


class PtrhashInternals(unittest.TestCase):
    def lint(self, body, path="src/core/x.cc"):
        return list(lightne_lint.check_ptrhash(_index(path, body)))

    def test_pointer_keyed_map_is_flagged(self):
        findings = self.lint("std::map<const Node*, int> ranks;\n")
        self.assertEqual(1, len(findings))
        self.assertEqual("ptrhash", findings[0].rule)

    def test_pointer_valued_map_is_not_flagged(self):
        self.assertEqual(
            [], self.lint("std::map<uint64_t, const Node*> by_id;\n"))

    def test_std_hash_of_pointer_is_flagged(self):
        findings = self.lint("std::hash<Node*> h;\n")
        self.assertEqual(1, len(findings))

    def test_pointer_bits_into_hash_are_flagged(self):
        findings = self.lint(
            "uint64_t F(const Node* n, uint64_t seed) {\n"
            "  return HashCombine64(reinterpret_cast<uint64_t>(n), seed);\n"
            "}\n")
        self.assertEqual(1, len(findings))

    def test_value_hash_is_not_flagged(self):
        self.assertEqual([], self.lint(
            "uint64_t F(uint64_t id, uint64_t seed) {\n"
            "  return HashCombine64(id, seed);\n"
            "}\n"))

    def test_relational_pointer_compare_is_flagged(self):
        findings = self.lint(
            "bool F(const Node* a, uint64_t b) {\n"
            "  return reinterpret_cast<uintptr_t>(a) < b;\n"
            "}\n")
        self.assertEqual(1, len(findings))

    def test_pointer_equality_is_not_flagged(self):
        self.assertEqual([], self.lint(
            "bool F(const Node* a, const Node* b) { return a == b; }\n"))


class SuppressionHygieneInternals(unittest.TestCase):
    def lint(self, body, path="src/util/x.cc"):
        return lightne_lint.lint_files(
            [lightne_lint.SourceFile(path, body)])

    def test_missing_justification_is_flagged(self):
        findings = self.lint("int a = std::rand();  // lint-ok: random\n")
        self.assertEqual(["suppression"], [f.rule for f in findings])
        self.assertIn("no justification", findings[0].message)

    def test_stale_suppression_is_flagged(self):
        findings = self.lint("int a = 1;  // lint-ok: timer (old clock)\n")
        self.assertEqual(["suppression"], [f.rule for f in findings])
        self.assertIn("stale", findings[0].message)

    def test_unknown_rule_is_flagged(self):
        findings = self.lint("int a = 1;  // lint-ok: frobnicate (what)\n")
        self.assertEqual(["suppression"], [f.rule for f in findings])
        self.assertIn("names no suppressible rule", findings[0].message)

    def test_justified_matching_suppression_is_clean(self):
        self.assertEqual([], self.lint(
            "int a = std::rand();  // lint-ok: random (demo value)\n"))

    def test_suppression_findings_are_not_suppressible(self):
        # `suppression` is not itself a suppressible rule, and hygiene
        # findings bypass the suppression filter entirely.
        findings = self.lint("int a = 1;  // lint-ok: suppression (mask)\n")
        self.assertEqual(["suppression"], [f.rule for f in findings])
        self.assertIn("names no suppressible rule", findings[0].message)



if __name__ == "__main__":
    unittest.main()
