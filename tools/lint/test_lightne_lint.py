"""Tests for the repo-invariant linter.

Fixtures live under testdata/{bad,good}/, each a miniature repo tree. Every
bad fixture declares the rule it must trip in a leading `// expect-lint:
<rule>` (or `# expect-lint:` for CMake) comment; the test fails if that rule
does not fire on that file, or if any *other* file trips it, so both false
negatives and false positives in a rule break the suite (registered as the
`lint_selftest` ctest — a broken rule fails tier-1).
"""

import os
import re
import unittest

import lightne_lint

HERE = os.path.dirname(os.path.abspath(__file__))
BAD_ROOT = os.path.join(HERE, "testdata", "bad")
GOOD_ROOT = os.path.join(HERE, "testdata", "good")

EXPECT_RE = re.compile(r"expect-lint:\s*([a-z]+)")


def expected_rules(root):
    """Maps repo-relative fixture path -> rule it must trip."""
    expectations = {}
    for rel in lightne_lint.discover(root):
        full = os.path.join(root, rel)
        if not os.path.isfile(full):
            continue
        with open(full, encoding="utf-8") as fh:
            m = EXPECT_RE.search(fh.read())
        if m:
            expectations[rel] = m.group(1)
    return expectations


class BadFixtures(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.findings = lightne_lint.scan_repo(BAD_ROOT)
        cls.expected = expected_rules(BAD_ROOT)

    def test_every_rule_has_a_bad_fixture(self):
        self.assertEqual(set(self.expected.values()),
                         set(lightne_lint.RULES),
                         "each lint rule needs at least one bad fixture")

    def test_each_bad_fixture_trips_its_rule(self):
        for path, rule in self.expected.items():
            with self.subTest(fixture=path):
                hits = [f for f in self.findings
                        if f.path == path and f.rule == rule]
                self.assertTrue(
                    hits, f"{path} should trip rule '{rule}' but did not")

    def test_no_unexpected_rules_fire(self):
        for f in self.findings:
            with self.subTest(finding=f):
                self.assertEqual(
                    f.rule, self.expected.get(f.path),
                    f"{f.path}:{f.line} tripped unexpected rule "
                    f"'{f.rule}': {f.message}")


class GoodFixtures(unittest.TestCase):
    def test_good_tree_is_clean(self):
        findings = lightne_lint.scan_repo(GOOD_ROOT)
        self.assertEqual(
            [], findings,
            "good fixtures must produce zero findings:\n" +
            "\n".join(f"{f.path}:{f.line}: [{f.rule}]" for f in findings))


class StrippingInternals(unittest.TestCase):
    def test_comments_and_strings_are_blanked(self):
        stripped = lightne_lint.strip_comments_and_strings(
            'int x = 1; // std::rand()\n'
            'const char* s = "std::rand()";\n'
            '/* std::mt19937 */ int y = 2;\n')
        self.assertNotIn("rand", stripped)
        self.assertNotIn("mt19937", stripped)
        self.assertIn("int x = 1;", stripped)
        self.assertIn("int y = 2;", stripped)

    def test_newlines_survive_for_line_numbers(self):
        raw = 'a /* multi\nline\ncomment */ b\n'
        stripped = lightne_lint.strip_comments_and_strings(raw)
        self.assertEqual(raw.count("\n"), stripped.count("\n"))

    def test_escaped_quote_in_string(self):
        stripped = lightne_lint.strip_comments_and_strings(
            'f("a\\"b srand("); srand(1);\n')
        self.assertEqual(stripped.count("srand"), 1)


class StatusRuleInternals(unittest.TestCase):
    def lint_source(self, body):
        f = lightne_lint.SourceFile("src/graph/x.cc", body)
        names = lightne_lint.collect_status_names([f])
        return list(lightne_lint.check_status(f, names))

    DECLS = "class Status {};\nStatus Op();\nStatus Other(int v);\n"

    def test_bare_call_is_flagged(self):
        findings = self.lint_source(self.DECLS + "void F() {\n  Op();\n}\n")
        self.assertEqual(1, len(findings))
        self.assertEqual("status", findings[0].rule)
        self.assertEqual(5, findings[0].line)

    def test_multiline_bare_call_is_flagged(self):
        findings = self.lint_source(
            self.DECLS + "void F() {\n  Other(\n      42);\n}\n")
        self.assertEqual(1, len(findings))

    def test_consumed_calls_are_not_flagged(self):
        findings = self.lint_source(
            self.DECLS +
            "Status F() {\n"
            "  Status s = Op();\n"
            "  (void)Op();\n"
            "  if (!Other(1).ok()) return Op();\n"
            "  return Other(2);\n"
            "}\n")
        self.assertEqual([], findings)

    def test_object_chain_drop_is_flagged(self):
        body = (
            "class Status {};\n"
            "struct S { Status Op(); };\n"
            "void F(S* s) {\n  s->Op();\n}\n")
        findings = self.lint_source(body)
        self.assertEqual(1, len(findings))
        self.assertEqual(4, findings[0].line)


class AtomicioRuleInternals(unittest.TestCase):
    def lint_source(self, path, body):
        f = lightne_lint.SourceFile(path, body)
        return list(lightne_lint.check_atomicio(f))

    def test_ofstream_is_flagged(self):
        findings = self.lint_source(
            "src/core/x.cc", "#include <fstream>\nstd::ofstream out(p);\n")
        self.assertEqual(1, len(findings))
        self.assertEqual("atomicio", findings[0].rule)
        self.assertEqual(2, findings[0].line)

    def test_write_modes_are_flagged(self):
        for mode in ('"w"', '"wb"', '"a"', '"ab"', '"w+"', '"r+b"'):
            with self.subTest(mode=mode):
                findings = self.lint_source(
                    "bench/x.cc", f"void F() {{ fopen(p, {mode}); }}\n")
                self.assertEqual(1, len(findings))

    def test_read_mode_is_not_flagged(self):
        for mode in ('"r"', '"rb"'):
            with self.subTest(mode=mode):
                self.assertEqual([], self.lint_source(
                    "examples/x.cpp", f"void F() {{ fopen(p, {mode}); }}\n"))

    def test_variable_mode_is_not_flagged(self):
        # Mode not a literal: the linter cannot tell, so it stays quiet.
        self.assertEqual([], self.lint_source(
            "src/la/x.cc", "void F(const char* m) { fopen(p, m); }\n"))

    def test_tests_are_out_of_scope(self):
        self.assertEqual([], self.lint_source(
            "tests/x.cc", "std::ofstream out(p);\nfopen(p, \"w\");\n"))

    def test_artifact_io_is_exempt(self):
        self.assertEqual([], self.lint_source(
            "src/util/artifact_io.cc", "fopen(p, \"wb\");\n"))

    def test_fopen_in_comment_is_not_flagged(self):
        self.assertEqual([], self.lint_source(
            "src/core/x.cc", "// fopen(p, \"w\") would be wrong here\n"))


class SuppressionInternals(unittest.TestCase):
    def test_suppression_is_line_and_rule_scoped(self):
        f = lightne_lint.SourceFile(
            "src/util/x.cc",
            "int a = std::rand();  // lint-ok: random (why)\n"
            "int b = std::rand();\n")
        findings = [x for x in lightne_lint.check_random(f)
                    if not f.suppresses(x.line, x.rule)]
        self.assertEqual(1, len(findings))
        self.assertEqual(2, findings[0].line)


if __name__ == "__main__":
    unittest.main()
