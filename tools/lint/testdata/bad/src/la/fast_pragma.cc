// expect-lint: fastmath
#pragma GCC optimize("fast-math")

double Dot(const double* a, const double* b, int n) {
  double acc = 0;
  for (int i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}
