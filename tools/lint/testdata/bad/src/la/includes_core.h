// expect-lint: layering
#ifndef TESTDATA_BAD_INCLUDES_CORE_H_
#define TESTDATA_BAD_INCLUDES_CORE_H_

#include "core/lightne.h"

#endif
