// expect-lint: unordered
#include <unordered_map>

double SumWeights(const std::unordered_map<int, double>& weights) {
  double total = 0;
  // Iteration order is unspecified: accumulation order (and thus the FP
  // result) varies run to run.
  for (const auto& [key, value] : weights) total += value;
  return total;
}
