// expect-lint: parfloat
// Seeded hazard: float accumulation into captured state inside a
// ParallelFor lambda — the sum depends on the schedule.
#include "parallel/parallel_for.h"

namespace lightne {

double SumAll(const double* x, uint64_t n) {
  double sum = 0.0;
  ParallelFor(0, n, [&](uint64_t i) {
    sum += x[i];
  });
  return sum;
}

}  // namespace lightne
