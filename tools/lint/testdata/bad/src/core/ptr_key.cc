// expect-lint: ptrhash
// Seeded hazards: a map ordered by pointer keys and pointer bits fed to
// the repo hash — both vary with ASLR run to run.
#include <map>

#include "util/random.h"

namespace lightne {

struct Node {
  int id;
};

std::map<const Node*, int> g_ranks;

uint64_t NodeDigest(const Node* node, uint64_t seed) {
  return HashCombine64(reinterpret_cast<uint64_t>(node), seed);
}

}  // namespace lightne
