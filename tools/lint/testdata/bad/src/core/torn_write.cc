// expect-lint: atomicio
#include <cstdio>
#include <fstream>

void WriteCheckpoint(const char* path) {
  std::ofstream out(path);  // direct write: a crash leaves a torn file
  out << "half-written";
}

void AppendLog(const char* path) {
  std::FILE* f = std::fopen(path, "a");
  if (f != nullptr) std::fclose(f);
}
