// expect-lint: lockorder
// Seeded hazard: two-mutex acquisition-order inversion — ForwardPath takes
// a then b, ReversePath takes b then a; running both concurrently can
// deadlock.
#include "util/thread_annotations.h"

namespace lightne {

Mutex g_mu_a;
Mutex g_mu_b;
int g_state = 0;

void ForwardPath() {
  MutexLock hold_a(g_mu_a);
  MutexLock hold_b(g_mu_b);
  ++g_state;
}

void ReversePath() {
  MutexLock hold_b(g_mu_b);
  MutexLock hold_a(g_mu_a);
  --g_state;
}

}  // namespace lightne
