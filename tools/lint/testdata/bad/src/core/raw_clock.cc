// expect-lint: timer
#include <chrono>

double ElapsedMs() {
  auto t0 = std::chrono::steady_clock::now();
  auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}
