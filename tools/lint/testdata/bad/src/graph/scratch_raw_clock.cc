// expect-lint: timer
// Timing a scratch-arena batch decode with a raw std::chrono clock instead
// of util/timer.h (which feeds the decode-latency histogram).
#include <chrono>
#include <cstdint>

#include "parallel/scratch.h"

uint64_t TimedBatchDecode(uint64_t block_len) {
  lightne::ScratchArena::Scope scratch(
      lightne::ScratchArena::ForCurrentThread());
  uint32_t* block = scratch.AllocArray<uint32_t>(block_len);
  auto t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < block_len; ++i) block[i] = static_cast<uint32_t>(i);
  auto t1 = std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration<double, std::micro>(t1 - t0).count());
}
