// expect-lint: rawmutex
// Guarding a shared decode pool with a raw std::mutex defeats the point of
// worker-local scratch arenas (and skips the annotated lightne::Mutex
// wrappers, so thread-safety analysis cannot see the lock).
#include <cstdint>
#include <mutex>

#include "parallel/scratch.h"

namespace {
std::mutex g_pool_mu;
uint32_t* g_shared_pool = nullptr;
}  // namespace

void PublishPool(uint64_t entries) {
  lightne::ScratchArena::Scope scratch(
      lightne::ScratchArena::ForCurrentThread());
  uint32_t* pool = scratch.AllocArray<uint32_t>(entries);
  std::lock_guard<std::mutex> lock(g_pool_mu);
  g_shared_pool = pool;
}
