// expect-lint: rngflow
// Seeded hazards: a draw behind && in a condition and a draw inside an
// if-branch both make the RNG cursor data-dependent.
#include "util/random.h"

namespace lightne {

uint64_t CondDraw(Rng& rng, bool gate, double p) {
  uint64_t n = 0;
  if (gate && rng.Bernoulli(p)) ++n;
  if (gate) {
    n += rng.UniformInt(7);
  }
  return n;
}

}  // namespace lightne
