// expect-lint: status
#include <string>

class Status {};
class Saver {
 public:
  Status SaveCheckpoint(const std::string& path);
};
Status WriteManifest(const std::string& path);

void Flush(Saver& saver) {
  WriteManifest("manifest.json");
  saver.SaveCheckpoint("model.bin");
}
