// expect-lint: rawmutex
#include <mutex>

std::mutex g_mu;

void Touch(int* counter) {
  std::lock_guard<std::mutex> lock(g_mu);
  ++*counter;
}
