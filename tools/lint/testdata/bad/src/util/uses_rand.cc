// expect-lint: random
#include <cstdlib>
#include <random>

int AmbientRandomness() {
  std::random_device rd;
  std::mt19937 gen(rd());
  srand(static_cast<unsigned>(time(nullptr)));
  return std::rand() + rand() % 7 + static_cast<int>(gen());
}
