// expect-lint: suppression
// Seeded hygiene violations: a suppression with no justification, a stale
// suppression whose rule no longer fires, and an unknown rule name.
namespace lightne {

int NoJustification() {
  return std::rand();  // lint-ok: random
}

int Stale() {
  return 7;  // lint-ok: timer (calibration constant, not a clock)
}

int UnknownRule() {
  return 9;  // lint-ok: frobnicate (no such rule)
}

}  // namespace lightne
