// Clean: locking goes through the annotated wrappers, never raw std types.
#include "util/thread_annotations.h"

namespace {
lightne::Mutex g_mu;
int g_counter LIGHTNE_GUARDED_BY(g_mu) = 0;
}  // namespace

void Touch() {
  lightne::MutexLock lock(g_mu);
  ++g_counter;
}
