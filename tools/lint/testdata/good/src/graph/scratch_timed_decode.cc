// Clean: batch decode into a worker-local scratch arena, timed through
// util/timer.h so the measurement can feed the walk/decode_block_us
// histogram — no raw clocks, no raw locks.
#include <cstdint>

#include "parallel/scratch.h"
#include "util/timer.h"

double TimedBatchDecode(uint64_t block_len) {
  lightne::ScratchArena::Scope scratch(
      lightne::ScratchArena::ForCurrentThread());
  uint32_t* block = scratch.AllocArray<uint32_t>(block_len);
  lightne::Timer timer;
  for (uint64_t i = 0; i < block_len; ++i) block[i] = static_cast<uint32_t>(i);
  return timer.Seconds() * 1e6;
}
