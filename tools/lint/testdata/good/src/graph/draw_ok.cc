// RNG consumption patterns that rngflow must not flag: a draw as the
// *first* operand of a condition (always consumed), unconditional draws,
// draws in `for` bodies (fixed trip count — the documented blind spot),
// and a per-item Rng derived inside a parallel lambda.
#include "parallel/parallel_for.h"
#include "util/random.h"

namespace lightne {

uint64_t DrawOk(Rng& rng, double p, uint64_t n, uint64_t* out,
                uint64_t seed) {
  uint64_t acc = 0;
  if (rng.Bernoulli(p)) ++acc;  // first operand: consumed on every path
  acc += rng.UniformInt(9);     // unconditional
  for (uint64_t i = 0; i < n; ++i) {
    acc += rng.UniformInt(3);   // `for` trip count is data, not a branch
  }
  ParallelFor(0, n, [&](uint64_t i) {
    Rng item_rng(HashCombine64(seed, i));  // per-item stream
    out[i] = item_rng.UniformInt(9);
  });
  return acc;
}

}  // namespace lightne
