// Clean: every Status/Result-returning call is consumed.
#include <string>

class Status {
 public:
  bool ok() const { return true; }
};
class Saver {
 public:
  Status SaveCheckpoint(const std::string& path);
};
Status WriteManifest(const std::string& path);

Status Flush(Saver& saver) {
  Status s = WriteManifest("manifest.json");
  if (!s.ok()) return s;
  if (!saver.SaveCheckpoint("model.bin").ok()) {
    return saver.SaveCheckpoint("model.retry.bin");
  }
  (void)WriteManifest("manifest.shadow.json");  // best-effort shadow copy
  return Status();
}
