// Read-only fopen is fine anywhere: the atomicio rule only targets write
// modes (w/a/+), where a crash mid-write can tear the file.
#include <cstdio>

long FileSize(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return -1;
  std::fseek(f, 0, SEEK_END);
  long size = std::ftell(f);
  std::fclose(f);
  return size;
}
