// A justified raw-clock use stays allowed via a line-scoped suppression.
#include <chrono>

double WallSeconds() {
  auto now =
      std::chrono::system_clock::now();  // lint-ok: timer (timestamp, not
                                         // a duration measurement)
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}
