// Clean: a justified suppression silences the rule on that line only.
#include <ctime>

long long StampedNow() {
  return static_cast<long long>(
      std::time(nullptr));  // lint-ok: random (timestamp, not an RNG seed)
}
