// The designated home of the raw monotonic clock: the timer rule exempts
// src/util/trace.h (and src/util/timer.h, whose Timer wraps this clock).
#ifndef TESTDATA_GOOD_SRC_UTIL_TRACE_H_
#define TESTDATA_GOOD_SRC_UTIL_TRACE_H_

#include <chrono>
#include <cstdint>

inline uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#endif  // TESTDATA_GOOD_SRC_UTIL_TRACE_H_
