// Clean: all randomness derives from the counter-seedable Rng.
#include "util/random.h"

double DeterministicDraw(uint64_t seed, uint64_t item) {
  lightne::Rng rng = lightne::ItemRng(seed, item);
  return rng.Uniform();
}
