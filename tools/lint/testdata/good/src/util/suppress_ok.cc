// A justified suppression on a line where its rule really fires: the
// finding is masked and the suppression-hygiene rule stays quiet.
namespace lightne {

int ScrambleDemo() {
  return std::rand();  // lint-ok: random (fixture exercising a justified suppression)
}

}  // namespace lightne
