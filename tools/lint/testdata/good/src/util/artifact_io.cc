// The designated home of write-mode fopen: the atomicio rule exempts
// src/util/artifact_io.cc, where AtomicFileWriter opens its tmp file.
#include <cstdio>

std::FILE* OpenTmpForWrite(const char* tmp_path) {
  return std::fopen(tmp_path, "wb");
}
