// Deterministic parallel accumulation patterns that parfloat must not
// flag: per-worker partitions, lambda-local accumulators, the GemmTN
// row-pointer idiom, and integer fixed-point counters.
#include "parallel/parallel_for.h"

namespace lightne {

double SumDeterministic(const double* x, uint64_t n, double* partial,
                        float* c, uint64_t ncols, uint64_t* mass_fp20) {
  ParallelForWorkers([&](int worker, int workers) {
    double acc = 0.0;  // lambda-local: per-worker state
    const uint64_t lo = n * worker / workers;
    const uint64_t hi = n * (worker + 1) / workers;
    for (uint64_t i = lo; i < hi; ++i) acc += x[i];
    partial[worker] += acc;  // partitioned by the worker index
  });
  ParallelFor(0, n, [&](uint64_t i) {
    float* ci = c + i * ncols;  // lambda-local row pointer (GemmTN idiom)
    for (uint64_t j = 0; j < ncols; ++j) ci[j] += 1.0f;
    *mass_fp20 += 1;  // integer fixed-point counter
  });
  double sum = 0.0;
  for (int w = 0; w < 8; ++w) sum += partial[w];  // sequential reduce
  return sum;
}

}  // namespace lightne
