// Consistent two-mutex acquisition order (a before b on every path):
// the lock graph has edges but no cycle, so lockorder stays quiet.
#include "util/thread_annotations.h"

namespace lightne {

Mutex g_mu_a;
Mutex g_mu_b;
int g_state = 0;

void FirstPath() {
  MutexLock hold_a(g_mu_a);
  MutexLock hold_b(g_mu_b);
  ++g_state;
}

void SecondPath() {
  MutexLock hold_a(g_mu_a);
  MutexLock hold_b(g_mu_b);
  --g_state;
}

}  // namespace lightne
