// Clean: deterministic containers in a result-affecting path, and a comment
// merely *mentioning* std::unordered_map does not trip the rule (comments
// are stripped before scanning).
#include <map>
#include <vector>

double SumWeights(const std::map<int, double>& weights) {
  double total = 0;
  for (const auto& [key, value] : weights) total += value;
  return total;
}
