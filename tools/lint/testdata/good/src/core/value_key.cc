// Stable-id keying and hashing that ptrhash must not flag: containers
// keyed by value ids, hashes over values, pointers compared only for
// equality.
#include <map>

#include "util/random.h"

namespace lightne {

struct Node {
  uint64_t id;
};

std::map<uint64_t, const Node*> g_by_id;  // pointer *values*, id keys

uint64_t IdDigest(const Node& node, uint64_t seed) {
  return HashCombine64(node.id, seed);
}

bool SameNode(const Node* a, const Node* b) { return a == b; }

}  // namespace lightne
