// Clean: core sits above la and graph in the layering, so these includes
// are allowed.
#ifndef TESTDATA_GOOD_INCLUDES_LA_H_
#define TESTDATA_GOOD_INCLUDES_LA_H_

#include "graph/csr.h"
#include "la/kernels.h"
#include "util/status.h"

#endif
