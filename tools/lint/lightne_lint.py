#!/usr/bin/env python3
"""LightNE repo-invariant linter (stdlib only).

Mechanically enforces the invariants that neither the compiler nor the test
suite can guarantee — see DESIGN.md §9 ("Static-analysis contract").

Line-scoped rules (regex over comment/string-stripped text):

  random     The determinism contract bans ambient randomness: no rand()/
             std::rand/srand, no std::random_device, no std::mt19937, and no
             time()-seeded anything outside src/util/random.h. All
             randomness flows through the counter-seedable Rng so results
             are a pure function of (seed, work item).
  fastmath   No -ffast-math-style flags or optimize pragmas anywhere
             (sources or CMake): value-changing FP transforms would break
             the bit-identical kernel contract of DESIGN.md §8.
  unordered  src/core, src/la, src/graph may not use std::unordered_{map,
             set,multimap,multiset}: their iteration order is unspecified,
             so any result-affecting traversal becomes nondeterministic.
  status     Every call to a Status/Result<T>-returning function must be
             consumed (assigned, returned, tested, or explicitly cast to
             (void)). Bare-statement drops lose the error path.
  layering   Include hygiene: a module may include only itself and the
             layers below it (util -> parallel -> {graph, la} -> data ->
             core -> {baselines, eval}).
  rawmutex   No raw std::mutex/std::shared_mutex/std::condition_variable
             (or their lock RAII types) outside src/util/
             thread_annotations.h: all locks must be the annotated wrappers
             so Clang's -Wthread-safety sees every acquisition.
  timer      No raw std::chrono clocks outside src/util/timer.h and
             src/util/trace.h: all timing goes through Timer/StageTimer/
             TraceSpan (DESIGN.md §10).
  atomicio   No direct file writes in src/, bench/ or examples/ outside
             src/util/artifact_io.cc: every persisted file goes through
             AtomicFileWriter's write-tmp -> fsync -> rename (DESIGN.md
             §12). Read-only fopen("rb") is fine; tests/ is out of scope.

Scope-aware rules (C++ tokenizer + brace/scope tracking + function/lambda
extraction + a static call/lock graph — see FileIndex below):

  parfloat   Floating-point compound assignment (+=, -=, *=, /=) on state
             captured into a ParallelFor / ParallelForWorkers / RunOnAll
             lambda is schedule-dependent (FP addition does not associate).
             Deterministic patterns pass unflagged: targets that are local
             to the lambda (per-item state, the GemmTN row-pointer idiom),
             targets indexed by a lambda-local (per-worker partitions like
             partial[worker]), and integer fixed-point counters (names
             matching *_fp<N>, e.g. mass_fp20). Everything else needs a
             justified suppression. Scope: src/.
  rngflow    The one-Uniform-per-draw contract: in sampling hot paths
             (src/graph/, src/core/) an Rng draw may not sit behind a
             conditional — an if/else/switch branch, a while/do loop, the
             right side of &&/|| in a condition, a ternary — because a
             data-dependent draw count desynchronizes the replayable RNG
             cursor. Draws as the *first* operand of a condition are fine
             (always consumed). `for` bodies are deliberately not flagged
             (trip counts are data, not draw-conditional — a documented
             blind spot). Additionally, anywhere in src/: a draw inside a
             parallel lambda on an Rng not declared inside that lambda
             (i.e. captured) shares one stream across workers; derive a
             per-item Rng(HashCombine64(seed, item)) instead.
  lockorder  Cycle detection over the static lock graph: annotated RAII
             acquisitions (MutexLock / WriterMutexLock / ReaderMutexLock),
             LIGHTNE_REQUIRES preconditions, and lock acquisitions reached
             transitively through calls (name-matched, depth-capped). An
             A->B edge means B is (or may be) acquired while A is held;
             any cycle is a potential deadlock and is reported with the
             acquisition chain for every edge. Locks are identified as
             file::name (file::function::name for function-local locks),
             so same-named members in different files stay distinct —
             cross-TU aliasing of one shared mutex is a known blind spot.
  ptrhash    Pointer-derived values feeding hashes, comparisons, or
             container ordering (std::hash/less/greater over pointer
             types, std::map/set keyed by a pointer, reinterpret_cast
             inside a *Hash*/SplitMix64 argument list, relational
             comparison of reinterpret_cast results): addresses differ
             run to run, so any result-affecting use is nondeterministic.
  suppression  Suppression hygiene (always on): every `lint-ok: <rule>`
             must name a real rule and carry a non-empty justification
             (at least one word), and a suppression on a line where its
             rule no longer fires is itself an error, so the suppression
             set cannot rot. Suppression findings are not suppressible.

Suppression: append a comment containing `lint-ok: <rule> <justification>`
to the offending line. For a multi-line statement the comment may sit either
on the line the finding points at (the statement start) or on the line the
offending token actually occupies. Example:

    std::time(nullptr));  // lint-ok: random (timestamp, not an RNG seed)

Usage:
    tools/lint/lightne_lint.py                 # lint src/ tests/ bench/ examples/
    tools/lint/lightne_lint.py PATH...         # lint specific files/dirs
    tools/lint/lightne_lint.py --report F.json # also write a JSON report
Exit status: 0 clean, 1 findings, 2 usage error.
"""

import json
import os
import re
import sys
from bisect import bisect_right
from collections import namedtuple

# `line` points at the statement start (editor jump-to-error lands on the
# statement); `match_line` at the offending token when that differs, so
# suppressions on either line are honored. None when they coincide.
Finding = namedtuple("Finding", ["path", "line", "rule", "message",
                                 "match_line"])
Finding.__new__.__defaults__ = (None,)

RULES = ("random", "fastmath", "unordered", "status", "layering", "rawmutex",
         "timer", "atomicio", "parfloat", "rngflow", "lockorder", "ptrhash",
         "suppression")

CPP_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp", ".cxx")
DEFAULT_ROOTS = ("src", "tests", "bench", "examples")

# Files exempt from specific rules (the one place each primitive may live).
RANDOM_EXEMPT = ("src/util/random.h",)
RAWMUTEX_EXEMPT = ("src/util/thread_annotations.h",)
TIMER_EXEMPT = ("src/util/timer.h", "src/util/trace.h")
STATUS_COLLECT_SKIP = ("src/util/status.h",)

# Module layering: each src/<dir> may include only the listed src/<dir>s.
LAYERING = {
    "util": {"util"},
    "parallel": {"util", "parallel"},
    "graph": {"util", "parallel", "graph"},
    "la": {"util", "parallel", "la"},
    "data": {"util", "parallel", "graph", "data"},
    "core": {"util", "parallel", "graph", "data", "la", "core"},
    "baselines": {"util", "parallel", "graph", "data", "la", "core",
                  "baselines"},
    "eval": {"util", "parallel", "graph", "data", "la", "eval"},
}

# Rule name plus the rest of the comment line — the justification text.
SUPPRESS_RE = re.compile(r"lint-ok:\s*([a-z]+)\b:?[ \t]*([^\n]*)")
JUSTIFICATION_RE = re.compile(r"[A-Za-z]{3,}")


def is_cmake(rel_path):
    base = os.path.basename(rel_path)
    return base == "CMakeLists.txt" or base.endswith(".cmake")


def is_cpp(rel_path):
    return rel_path.endswith(CPP_EXTENSIONS)


def strip_comments_and_strings(text):
    """Replaces comments and string/char literal *contents* with spaces,
    preserving newlines so line numbers survive."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append('"')
                i += 1
            elif c == "'":
                state = "char"
                out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        else:  # string or char
            quote = '"' if state == "string" else "'"
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(quote)
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def suppressed_lines(text):
    """Maps 1-based line number -> set of rule names suppressed there."""
    result = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        for rule, _ in SUPPRESS_RE.findall(line):
            result.setdefault(lineno, set()).add(rule)
    return result


def suppression_sites(text):
    """All (line, rule, justification-text) suppression comments."""
    sites = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        for rule, rest in SUPPRESS_RE.findall(line):
            sites.append((lineno, rule, rest))
    return sites


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


PREPROC_LINE_RE = re.compile(r"(?m)^[ \t]*#[^\n]*\n")


def stmt_start_line(text, pos):
    """1-based line where the statement containing pos begins: just after
    the previous ;/{/} boundary, with preprocessor directives treated as
    line-scoped statements of their own."""
    boundary = max(text.rfind(";", 0, pos), text.rfind("{", 0, pos),
                   text.rfind("}", 0, pos))
    base = boundary + 1
    start = base
    for m in PREPROC_LINE_RE.finditer(text, base, pos):
        start = m.end()
    while start < pos and text[start] in " \t\n\r":
        start += 1
    return line_of(text, start)


def anchored(path, rule, message, text, pos):
    """Finding pointing at the statement start, remembering the line the
    pattern actually matched when that differs."""
    match_line = line_of(text, pos)
    stmt_line = stmt_start_line(text, pos)
    if stmt_line == match_line:
        return Finding(path, stmt_line, rule, message, None)
    return Finding(path, stmt_line, rule, message, match_line)


class SourceFile:
    def __init__(self, rel_path, raw):
        self.rel_path = rel_path
        self.raw = raw
        self.stripped = strip_comments_and_strings(raw) if is_cpp(
            rel_path) else raw
        self.suppressed = suppressed_lines(raw)
        self.suppress_sites = suppression_sites(raw)

    def suppresses(self, lineno, rule):
        return rule in self.suppressed.get(lineno, set())

    def suppresses_finding(self, finding):
        if self.suppresses(finding.line, finding.rule):
            return True
        return (finding.match_line is not None
                and self.suppresses(finding.match_line, finding.rule))


# --------------------------------------------------------------------------
# random
RANDOM_PATTERNS = (
    (re.compile(r"\bstd::rand\b"), "std::rand"),
    (re.compile(r"(?<!:)\brand\s*\("), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937(?:_64)?\b"), "std::mt19937"),
    (re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"),
     "time()-seeded value"),
)


def check_random(f):
    if f.rel_path in RANDOM_EXEMPT or not is_cpp(f.rel_path):
        return
    seen = set()
    for pattern, label in RANDOM_PATTERNS:
        for m in pattern.finditer(f.stripped):
            lineno = line_of(f.stripped, m.start())
            if (lineno, label) in seen:
                continue
            seen.add((lineno, label))
            yield anchored(
                f.rel_path, "random",
                f"{label} is banned by the determinism contract; derive "
                "randomness from util/random.h (Rng / ItemRng / "
                "HashCombine64)", f.stripped, m.start())


# --------------------------------------------------------------------------
# fastmath
FASTMATH_PATTERNS = (
    re.compile(r"-ffast-math\b"),
    re.compile(r"-funsafe-math-optimizations\b"),
    re.compile(r"-fassociative-math\b"),
    re.compile(r"-freciprocal-math\b"),
    re.compile(r"#\s*pragma\s+(?:GCC|clang)\s+optimize\b"),
    re.compile(r"#\s*pragma\s+clang\s+fp\b"),
    re.compile(r"#\s*pragma\s+STDC\s+FP_CONTRACT\s+ON\b"),
)


def check_fastmath(f):
    # CMake files are scanned raw (flags live inside quoted strings);
    # C++ files are scanned with comments/strings stripped.
    text = f.raw if is_cmake(f.rel_path) else f.stripped
    for pattern in FASTMATH_PATTERNS:
        for m in pattern.finditer(text):
            message = (f"'{m.group(0).strip()}' breaks the bit-identical "
                       "kernel contract (DESIGN.md §8); value-changing FP "
                       "transforms are banned")
            if is_cmake(f.rel_path):
                yield Finding(f.rel_path, line_of(text, m.start()),
                              "fastmath", message)
            else:
                yield anchored(f.rel_path, "fastmath", message, text,
                               m.start())


# --------------------------------------------------------------------------
# unordered
UNORDERED_RE = re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\b")
UNORDERED_DIRS = ("src/core/", "src/la/", "src/graph/")


def check_unordered(f):
    if not f.rel_path.startswith(UNORDERED_DIRS) or not is_cpp(f.rel_path):
        return
    for m in UNORDERED_RE.finditer(f.stripped):
        yield anchored(
            f.rel_path, "unordered",
            f"{m.group(0)} has unspecified iteration order; result-affecting "
            "paths must use std::map, sorted vectors, or "
            "ConcurrentHashTable+sort", f.stripped, m.start())


# --------------------------------------------------------------------------
# status
STATUS_DECL_RE = re.compile(
    r"(?:^|[;{}]|\n)\s*(?:static\s+|inline\s+|constexpr\s+)*"
    r"(?:Status|Result<[^;{}()=]+>)\s+([A-Za-z_]\w*)\s*\(",
    re.MULTILINE)
# An object/namespace chain like `foo.`, `it->second->`, `lightne::`,
# `FaultRegistry::Global().` — i.e. the call really is the whole statement.
CHAIN_RE = re.compile(
    r"^(?:[A-Za-z_]\w*(?:\(\))?\s*(?:\.|->|::)\s*)*$")


def collect_status_names(files):
    """Names of functions declared to return Status or Result<T>."""
    names = set()
    for f in files:
        if not is_cpp(f.rel_path) or f.rel_path in STATUS_COLLECT_SKIP:
            continue
        for m in STATUS_DECL_RE.finditer(f.stripped):
            names.add(m.group(1))
    return names


def matching_paren(text, open_pos):
    """Position just past the paren group opened at open_pos, or -1."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def check_status(f, status_names):
    if not is_cpp(f.rel_path) or not status_names:
        return
    text = f.stripped
    for name in status_names:
        for m in re.finditer(r"\b" + re.escape(name) + r"\s*\(", text):
            # Statement start: the last ; { or } before the call chain.
            stmt_start = max(text.rfind(";", 0, m.start()),
                             text.rfind("{", 0, m.start()),
                             text.rfind("}", 0, m.start()))
            prefix = text[stmt_start + 1:m.start()].strip()
            # Preprocessor lines are not statements.
            if "#" in prefix:
                continue
            if not CHAIN_RE.match(prefix):
                continue  # assigned / returned / tested / wrapped — consumed
            close = matching_paren(text, m.end() - 1)
            if close < 0:
                continue
            rest = text[close:close + 2].lstrip()
            if not rest.startswith(";"):
                continue  # member access / operator — the value is used
            yield anchored(
                f.rel_path, "status",
                f"return value of {name}() (Status/Result) is dropped; "
                "assign it, LIGHTNE_RETURN_IF_ERROR it, or cast to (void) "
                "with a comment", text, m.start())


# --------------------------------------------------------------------------
# layering
INCLUDE_RE = re.compile(r"#\s*include\s+\"([a-z_]+)/[^\"]+\"")


def check_layering(f):
    if not f.rel_path.startswith("src/") or not is_cpp(f.rel_path):
        return
    parts = f.rel_path.split("/")
    if len(parts) < 3:
        return
    module = parts[1]
    allowed = LAYERING.get(module)
    if allowed is None:
        return
    # Raw text: include paths are string literals, which stripping blanks.
    for m in INCLUDE_RE.finditer(f.raw):
        target = m.group(1)
        if target in LAYERING and target not in allowed:
            yield Finding(
                f.rel_path, line_of(f.raw, m.start()), "layering",
                f"src/{module} may not include src/{target} (dependency "
                "order: util -> parallel -> {graph, la} -> data -> core -> "
                "{baselines, eval})")


# --------------------------------------------------------------------------
# rawmutex
RAWMUTEX_TYPE_RE = re.compile(
    r"\bstd::(?:mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(?:_any)?|"
    r"lock_guard|unique_lock|shared_lock|scoped_lock)\b")
RAWMUTEX_INCLUDE_RE = re.compile(
    r"#\s*include\s+<(?:mutex|shared_mutex|condition_variable)>")


def check_rawmutex(f):
    if f.rel_path in RAWMUTEX_EXEMPT or not is_cpp(f.rel_path):
        return
    for pattern in (RAWMUTEX_TYPE_RE, RAWMUTEX_INCLUDE_RE):
        for m in pattern.finditer(f.stripped):
            yield anchored(
                f.rel_path, "rawmutex",
                f"'{m.group(0)}' bypasses thread-safety analysis; use the "
                "annotated Mutex/SharedMutex/CondVar wrappers from "
                "util/thread_annotations.h", f.stripped, m.start())


# --------------------------------------------------------------------------
# timer
TIMER_RE = re.compile(
    r"\bstd::chrono::(?:steady_clock|system_clock|high_resolution_clock)\b")


def check_timer(f):
    if f.rel_path in TIMER_EXEMPT or not is_cpp(f.rel_path):
        return
    for m in TIMER_RE.finditer(f.stripped):
        yield anchored(
            f.rel_path, "timer",
            f"'{m.group(0)}' bypasses the trace-layer clock; time with "
            "Timer/StageTimer (util/timer.h) or TraceSpan (util/trace.h) so "
            "bench numbers and pipeline traces agree", f.stripped, m.start())


# --------------------------------------------------------------------------
# atomicio
ATOMICIO_DIRS = ("src/", "bench/", "examples/")
ATOMICIO_EXEMPT = ("src/util/artifact_io.cc",)
ATOMICIO_STREAM_RE = re.compile(r"\bstd::(?:ofstream|fstream)\b")
ATOMICIO_FOPEN_RE = re.compile(r"\bfopen\s*\(")
# A mode literal containing w, a, or + opens the file for writing.
ATOMICIO_WRITE_MODE_RE = re.compile(r'"[rwab+]*[wa+][rwab+]*"\s*\)\s*$')


def check_atomicio(f):
    if (f.rel_path in ATOMICIO_EXEMPT or not is_cpp(f.rel_path)
            or not f.rel_path.startswith(ATOMICIO_DIRS)):
        return
    for m in ATOMICIO_STREAM_RE.finditer(f.stripped):
        yield anchored(
            f.rel_path, "atomicio",
            f"{m.group(0)} writes files directly; persisted files must go "
            "through AtomicFileWriter (util/artifact_io.h) so a crash or "
            "disk-full never leaves a torn artifact", f.stripped, m.start())
    for m in ATOMICIO_FOPEN_RE.finditer(f.stripped):
        close = matching_paren(f.stripped, m.end() - 1)
        if close < 0:
            continue
        # strip_comments_and_strings is length-preserving, so the raw text
        # at the same offsets still holds the mode literal it blanked.
        if ATOMICIO_WRITE_MODE_RE.search(f.raw[m.start():close]):
            yield anchored(
                f.rel_path, "atomicio",
                "fopen() in a write mode bypasses atomic "
                "write-tmp -> fsync -> rename; use AtomicFileWriter "
                "(util/artifact_io.h) so a crash never leaves a torn file",
                f.stripped, m.start())


# --------------------------------------------------------------------------
# Scope-aware core: tokenizer, bracket matching, function/lambda extraction,
# parallel-region detection. Shared by parfloat / rngflow / lockorder /
# ptrhash. Deliberately lightweight — it understands just enough C++ to
# track scopes; templates are skipped structurally, not parsed.

TOKEN_RE = re.compile(
    r"[A-Za-z_]\w*"
    r"|\.?\d(?:[\w.]|[eEpP][+-])*"
    r"|<<=|>>=|->\*|\.\.\.|::|->|\+\+|--|\+=|-=|\*=|/=|%=|&=|\|=|\^=|"
    r"==|!=|<=|>=|&&|\|\||<<|>>"
    r"|[^\sA-Za-z_0-9]")

OPENERS = {"(": ")", "{": "}", "[": "]"}
CLOSERS = {")", "}", "]"}

CPP_KEYWORDS = frozenset((
    "if", "else", "for", "while", "do", "switch", "case", "default",
    "return", "break", "continue", "goto", "sizeof", "alignof", "decltype",
    "new", "delete", "this", "true", "false", "nullptr", "const",
    "constexpr", "consteval", "constinit", "static", "inline", "extern",
    "mutable", "volatile", "register", "thread_local", "typedef", "using",
    "namespace", "class", "struct", "union", "enum", "template", "typename",
    "public", "private", "protected", "friend", "virtual", "override",
    "final", "noexcept", "try", "catch", "throw", "operator", "explicit",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
    "co_await", "co_yield", "co_return", "requires", "concept", "auto",
    "void", "bool", "char", "int", "short", "long", "float", "double",
    "signed", "unsigned", "wchar_t", "static_assert",
))

# Tokens allowed between a parameter list's ')' and the function body '{'
# (besides annotation macros, ctor init lists and trailing return types).
FUNC_TAIL_OK = frozenset((
    "const", "noexcept", "override", "final", "mutable", "volatile", "&",
    "&&", "try", "::", "<", ">", ",", "...", "*", "[", "]", ".",
))

# Thread-safety annotation macros whose argument names locks the function
# interacts with; REQUIRES/ACQUIRE seed the lock graph.
ANNOT_LOCK_MACROS = frozenset((
    "LIGHTNE_REQUIRES", "LIGHTNE_REQUIRES_SHARED", "LIGHTNE_ACQUIRE",
    "LIGHTNE_ACQUIRE_SHARED",
))

PARALLEL_CALLS = frozenset((
    "ParallelFor", "ParallelForWorkers", "RunOnAll", "Submit",
))

LOCK_RAII = frozenset(("MutexLock", "WriterMutexLock", "ReaderMutexLock"))

Func = namedtuple("Func", ["name", "line", "params", "body", "requires_"])
Lam = namedtuple("Lam", ["intro", "params", "body", "line"])

IDENT_RE = re.compile(r"[A-Za-z_]\w*\Z")


def is_ident(tok):
    return bool(IDENT_RE.match(tok)) and tok not in CPP_KEYWORDS


class FileIndex:
    """Token-level index of one C++ file (built on the stripped text)."""

    def __init__(self, f):
        self.f = f
        self.path = f.rel_path
        self.text = f.stripped
        self.toks = [(m.group(0), m.start())
                     for m in TOKEN_RE.finditer(self.text)]
        self._nl = [i for i, c in enumerate(self.text) if c == "\n"]
        self.match = self._match_brackets()
        self.parent = self._build_parents()
        self.functions = self._extract_functions()
        self.lambdas = self._extract_lambdas()
        self.callable_bodies = (
            {fn.body[0] for fn in self.functions}
            | {lam.body[0] for lam in self.lambdas})

    def tline(self, i):
        """1-based line of token i."""
        return bisect_right(self._nl, self.toks[i][1]) + 1

    def _match_brackets(self):
        match = {}
        stack = []
        for i, (t, _) in enumerate(self.toks):
            if t in OPENERS:
                stack.append(i)
            elif t in CLOSERS:
                # Pop until the matching opener kind (tolerates mismatches
                # from macro tricks or truncated files).
                while stack:
                    j = stack.pop()
                    if OPENERS[self.toks[j][0]] == t:
                        match[j] = i
                        match[i] = j
                        break
        return match

    def _build_parents(self):
        """parent[i] = index of the innermost bracket opener enclosing i."""
        parent = [None] * len(self.toks)
        stack = []
        for i, (t, _) in enumerate(self.toks):
            if t in CLOSERS and stack and self.match.get(i) == stack[-1]:
                stack.pop()
            parent[i] = stack[-1] if stack else None
            if t in OPENERS and i in self.match:
                stack.append(i)
        return parent

    def _extract_functions(self):
        """Function definitions: `name ( params ) [tail] { body }`, where
        tail may hold cv/ref qualifiers, LIGHTNE_* annotation macros, a ctor
        init list, or a trailing return type."""
        funcs = []
        n = len(self.toks)
        for i, (t, _) in enumerate(self.toks):
            if not is_ident(t) or i + 1 >= n or self.toks[i + 1][0] != "(":
                continue
            close = self.match.get(i + 1)
            if close is None:
                continue
            body, requires_ = self._body_after_params(close)
            if body is None:
                continue
            funcs.append(Func(t, self.tline(i), (i + 1, close),
                              (body, self.match[body]), tuple(requires_)))
        return funcs

    def _body_after_params(self, close):
        """From the ')' at `close`, finds the '{' opening a function body.
        Returns (body_open_idx, requires_lock_names) or (None, None)."""
        n = len(self.toks)
        i = close + 1
        requires_ = []
        in_tail = False  # saw ->, :, or an annotation macro
        while i < n:
            t = self.toks[i][0]
            if t == "{":
                if i not in self.match:
                    return None, None
                after = (self.toks[self.match[i] + 1][0]
                         if self.match[i] + 1 < n else "")
                if in_tail and after in (",", "{"):
                    # brace-init in a ctor init list: a_{1}, b_{2} { body }
                    i = self.match[i] + 1
                    continue
                return i, requires_
            if t in (";", ")", "}", "=", "?"):
                return None, None
            if t in ANNOT_LOCK_MACROS and i + 1 < n \
                    and self.toks[i + 1][0] == "(":
                mclose = self.match.get(i + 1)
                if mclose is None:
                    return None, None
                requires_.extend(
                    tok for tok, _ in self.toks[i + 2:mclose]
                    if is_ident(tok))
                i = mclose + 1
                in_tail = True
                continue
            if t.startswith("LIGHTNE_"):
                if i + 1 < n and self.toks[i + 1][0] == "(":
                    mclose = self.match.get(i + 1)
                    if mclose is None:
                        return None, None
                    i = mclose + 1
                else:
                    i += 1
                in_tail = True
                continue
            if t in ("->", ":"):
                in_tail = True
                i += 1
                continue
            if t == "(":
                pclose = self.match.get(i)
                if pclose is None:
                    return None, None
                i = pclose + 1
                continue
            if t in FUNC_TAIL_OK or (in_tail and (is_ident(t)
                                                  or t in CPP_KEYWORDS
                                                  or t.isdigit())):
                i += 1
                continue
            return None, None
        return None, None

    def _extract_lambdas(self):
        lams = []
        n = len(self.toks)
        for i, (t, _) in enumerate(self.toks):
            if t != "[":
                continue
            prev = self.toks[i - 1][0] if i > 0 else ""
            # A '[' after a value expression is a subscript, not a capture.
            if prev and (prev[0].isalnum() or prev[0] == "_"
                         or prev in (")", "]")):
                continue
            close = self.match.get(i)
            if close is None:
                continue
            j = close + 1
            params = None
            if j < n and self.toks[j][0] == "(":
                pclose = self.match.get(j)
                if pclose is None:
                    continue
                params = (j, pclose)
                j = pclose + 1
            # Specifier / trailing-return zone up to the body '{'.
            k = j
            ok = False
            while k < n:
                tk = self.toks[k][0]
                if tk == "{":
                    ok = True
                    break
                if tk in ("class", "struct", "enum", "namespace", ";", ")",
                          ",", "]", "}", "="):
                    break
                if tk == "(":  # e.g. noexcept(...)
                    pc = self.match.get(k)
                    if pc is None:
                        break
                    k = pc + 1
                    continue
                k += 1
            if not ok or k not in self.match:
                continue
            lams.append(Lam((i, close), params, (k, self.match[k]),
                            self.tline(i)))
        return lams

    def parallel_arg_ranges(self):
        """Token ranges of argument lists of parallel-dispatch calls."""
        ranges = []
        n = len(self.toks)
        for i, (t, _) in enumerate(self.toks):
            if t not in PARALLEL_CALLS:
                continue
            j = i + 1
            if j < n and self.toks[j][0] == "<":  # skip template args
                depth = 0
                while j < n:
                    tj = self.toks[j][0]
                    if tj == "<":
                        depth += 1
                    elif tj == ">":
                        depth -= 1
                        if depth == 0:
                            j += 1
                            break
                    elif tj == ">>":
                        depth -= 2
                        if depth <= 0:
                            j += 1
                            break
                    elif tj in (";", "{", ")"):
                        j = -1
                        break
                    j += 1
                if j < 0:
                    continue
            if j < n and self.toks[j][0] == "(" and j in self.match:
                ranges.append((j, self.match[j], t))
        return ranges

    def parallel_lambdas(self):
        """(Lam, callee) for each lambda passed directly (not nested inside
        another lambda) to a parallel-dispatch call."""
        result = []
        for lo, hi, callee in self.parallel_arg_ranges():
            in_range = [lam for lam in self.lambdas
                        if lo < lam.intro[0] < hi]
            for lam in in_range:
                nested = any(o is not lam
                             and o.body[0] < lam.intro[0] < o.body[1]
                             for o in in_range)
                if not nested:
                    result.append((lam, callee))
        return result

    def locals_of(self, lam):
        """Names that are per-item inside a parallel lambda: its parameters,
        every variable declared anywhere in its body (including nested
        lambdas' bodies), and nested lambdas' parameters. The declaration
        heuristic over-approximates on purpose: treating a shared name as
        local can only silence a finding, never invent one."""
        names = set()
        ranges = [lam.body]
        if lam.params is not None:
            ranges.append(lam.params)
        for o in self.lambdas:
            if lam.body[0] < o.intro[0] < lam.body[1] and o.params:
                ranges.append(o.params)
        for lo, hi in ranges:
            names |= self._decls_in(lo, hi)
        return names

    def _decls_in(self, lo, hi):
        names = set()
        n = len(self.toks)
        i = lo + 1
        while i < hi:
            t = self.toks[i][0]
            if t == "auto" and i + 1 < hi and self.toks[i + 1][0] == "[":
                # structured binding: auto [a, b] = ...
                bclose = self.match.get(i + 1, i + 1)
                names |= {tok for tok, _ in self.toks[i + 2:bclose]
                          if is_ident(tok)}
                i = bclose + 1
                continue
            if is_ident(t):
                prev = self.toks[i - 1][0] if i > 0 else ""
                nxt = self.toks[i + 1][0] if i + 1 < n else ""
                prev_typeish = (bool(prev) and (prev[0].isalnum()
                                                or prev[0] == "_"
                                                or prev in ("*", "&", "&&",
                                                            ">", "]")))
                if prev_typeish and nxt in ("=", ";", "{", "(", ":", ",",
                                            ")"):
                    names.add(t)
            i += 1
        return names

    def stmt_first_tok(self, d):
        """Index of the first token of the statement containing token d
        (bracket groups are skipped whole on the way back)."""
        k = d
        while k > 0:
            t = self.toks[k - 1][0]
            if t in (";", "{", "}"):
                return k
            if t in (")", "]") and (k - 1) in self.match:
                k = self.match[k - 1]
                continue
            k -= 1
        return 0

    def enclosing_function(self, i):
        """Innermost Func whose body contains token i, or None."""
        best = None
        for fn in self.functions:
            lo, hi = fn.body
            if lo < i < hi and (best is None or lo > best.body[0]):
                best = fn
        return best


# --------------------------------------------------------------------------
# parfloat
COMPOUND_OPS = ("+=", "-=", "*=", "/=")
FLOATY_DECL_RE = re.compile(
    r"\b(?:float|double|Matrix)\b[^;(){}=]*?[\s*&>]([A-Za-z_]\w*)\s*"
    r"[;=({,)\[]")
FIXED_POINT_RE = re.compile(r"_fp\d*$")


def floaty_names(text):
    """Names declared anywhere in the file with a floating type (float,
    double, Matrix, or containers thereof — the type word just has to
    appear in the declarator)."""
    return {m.group(1) for m in FLOATY_DECL_RE.finditer(text)}


def params_of(idx, lam):
    """Parameter names of a lambda plus those of lambdas nested in it —
    the per-item / per-worker indices of the parallel region."""
    ranges = []
    if lam.params is not None:
        ranges.append(lam.params)
    for o in idx.lambdas:
        if lam.body[0] < o.intro[0] < lam.body[1] and o.params:
            ranges.append(o.params)
    names = set()
    for lo, hi in ranges:
        names |= idx._decls_in(lo, hi)
    return names


def check_parfloat(idx):
    if not idx.path.startswith("src/"):
        return
    floaty = floaty_names(idx.text)
    toks = idx.toks
    for lam, callee in idx.parallel_lambdas():
        locs = idx.locals_of(lam)
        pars = params_of(idx, lam)
        lo, hi = lam.body
        for i in range(lo + 1, hi):
            if toks[i][0] not in COMPOUND_OPS:
                continue
            s = idx.stmt_first_tok(i)
            slice_toks = [t for t, _ in toks[s:i]]
            slice_ids = [t for t in slice_toks if is_ident(t)]
            if not slice_ids:
                continue
            # The object being assigned: identifiers before the first
            # subscript / member access.
            head_ids = []
            for t in slice_toks:
                if t in ("[", ".", "->"):
                    break
                if is_ident(t):
                    head_ids.append(t)
            if any(t in locs for t in (head_ids or slice_ids)):
                continue  # target is per-item state inside the lambda
            if any(t in pars for t in slice_ids):
                continue  # partitioned by the item/worker index
            if any(FIXED_POINT_RE.search(t) for t in slice_ids):
                continue  # integer fixed-point counter (e.g. mass_fp20)
            if not any(t in floaty for t in slice_ids):
                continue  # integer or unknown-typed accumulation
            target = "".join(slice_toks).rstrip("=")
            yield anchored(
                idx.path, "parfloat",
                f"float '{toks[i][0]}' on captured '{target}' inside a "
                f"{callee} lambda is schedule-dependent (FP addition does "
                "not associate); use a per-worker partition, an integer "
                "fixed-point counter (*_fp20), or suppress with a written "
                "justification", idx.text, toks[i][1])


# --------------------------------------------------------------------------
# rngflow
RNGFLOW_HOT_DIRS = ("src/graph/", "src/core/")
RNG_DECL_RE = re.compile(r"\b(?:Rng|ItemRng)\s*&?\s*([A-Za-z_]\w*)\s*[(={;,)]")
DRAW_METHODS = frozenset(("Uniform", "UniformInt", "UniformRange",
                          "Bernoulli", "Gaussian", "Next"))


def rng_draw_sites(idx, rng_names):
    """Token indexes of `rng.Draw(` / `rng->Draw(` call heads."""
    toks = idx.toks
    n = len(toks)
    for i, (t, _) in enumerate(toks):
        if (t in rng_names and i + 3 < n
                and toks[i + 1][0] in (".", "->")
                and toks[i + 2][0] in DRAW_METHODS
                and toks[i + 3][0] == "("):
            yield i


def brace_kind(idx, g):
    """What introduced the brace at token g: if/else/while/do/for/switch,
    or 'block' for a plain scope."""
    toks = idx.toks
    p = g - 1
    if p < 0:
        return "top"
    t = toks[p][0]
    if t in ("else", "do", "try"):
        return t
    if t == ")" and p in idx.match:
        o = idx.match[p]
        intro = toks[o - 1][0] if o > 0 else ""
        if intro in ("if", "while", "for", "switch", "catch"):
            return intro
    return "block"


def draw_context(idx, d):
    """Why the draw at token d is conditionally executed, or None. The walk
    stops at the enclosing function/lambda body (interprocedural draw
    conditions are a documented blind spot), and `for` bodies never flag
    (their trip count is data, not a draw condition)."""
    toks = idx.toks
    # A '?' earlier in the same statement conditions everything after it.
    k = d - 1
    while k >= 0 and toks[k][0] not in (";", "{", "}"):
        if toks[k][0] == "?":
            return "behind '?' in a ternary"
        if toks[k][0] in (")", "]") and k in idx.match:
            k = idx.match[k]
            continue
        k -= 1
    saw_cond_paren = False
    g = idx.parent[d]
    while g is not None:
        t = toks[g][0]
        if t == "(":
            intro = toks[g - 1][0] if g > 0 else ""
            if intro in ("if", "while"):
                saw_cond_paren = True
                for k2 in range(g + 1, d):
                    if idx.parent[k2] == g and toks[k2][0] in ("&&", "||"):
                        return (f"behind '{toks[k2][0]}' in a {intro} "
                                "condition (short-circuit)")
        elif t == "{":
            if g in idx.callable_bodies:
                break
            kind = brace_kind(idx, g)
            if kind in ("if", "else", "switch"):
                return f"inside a conditional branch ({kind})"
            if kind in ("while", "do"):
                return "inside a loop body"
        g = idx.parent[g]
    if not saw_cond_paren:
        s = idx.stmt_first_tok(d)
        t0 = toks[s][0]
        if t0 in ("if", "else"):
            return "in a braceless conditional body"
        if t0 in ("while", "do"):
            return "in a braceless loop body"
    return None


def check_rngflow(idx):
    if not idx.path.startswith("src/"):
        return
    rng_names = ({"rng"}
                 | {m.group(1) for m in RNG_DECL_RE.finditer(idx.text)})
    draws = list(rng_draw_sites(idx, rng_names))
    if not draws:
        return
    toks = idx.toks
    # Shared-stream check (all of src/): a draw inside a parallel lambda on
    # an Rng that is not declared inside that lambda uses one stream across
    # workers — schedule-dependent consumption.
    reported = set()
    for lam, callee in idx.parallel_lambdas():
        locs = idx.locals_of(lam)
        lo, hi = lam.body
        for d in draws:
            if not lo < d < hi or toks[d][0] in locs:
                continue
            reported.add(d)
            yield anchored(
                idx.path, "rngflow",
                f"Rng '{toks[d][0]}' is captured into a {callee} lambda: "
                "one stream shared across workers makes the draw sequence "
                "schedule-dependent; derive a per-item "
                "Rng(HashCombine64(seed, item)) inside the lambda",
                idx.text, toks[d][1])
    # One-Uniform-per-draw check (sampling hot paths only).
    if not idx.path.startswith(RNGFLOW_HOT_DIRS):
        return
    for d in draws:
        if d in reported:
            continue
        reason = draw_context(idx, d)
        if reason is None:
            continue
        method = toks[d + 2][0]
        yield anchored(
            idx.path, "rngflow",
            f"{toks[d][0]}.{method}() {reason}: a data-dependent draw "
            "count desynchronizes the replayable RNG cursor "
            "(one-Uniform-per-draw contract); restructure so every code "
            "path consumes the same draws, or suppress with a written "
            "justification", idx.text, toks[d][1])


# --------------------------------------------------------------------------
# lockorder
LOCK_DECL_RE = re.compile(r"\b(?:Mutex|SharedMutex)\s+([A-Za-z_]\w*)\s*[;{=]")

LockSite = namedtuple("LockSite", ["lock", "path", "line", "tok", "scope"])

LOCK_CHAIN_CAP = 6  # max interprocedural hops in a witness chain


def _lock_id(idx, tok_i, name):
    """file::name, or file::function::name for function-local mutexes."""
    fn = idx.enclosing_function(tok_i)
    if fn is not None:
        lo, hi = fn.body
        body_text = idx.text[idx.toks[lo][1]:idx.toks[hi][1]]
        if re.search(r"\b(?:Mutex|SharedMutex)\s+" + re.escape(name)
                     + r"\s*[;{=(]", body_text):
            return f"{idx.path}::{fn.name}::{name}"
    return f"{idx.path}::{name}"


def _lock_sites(idx):
    """RAII acquisition sites with their lexical scope (to the end of the
    innermost enclosing brace — the guard's lifetime)."""
    sites = []
    toks = idx.toks
    n = len(toks)
    for i, (t, _) in enumerate(toks):
        if t not in LOCK_RAII:
            continue
        if i + 2 >= n or not is_ident(toks[i + 1][0]) \
                or toks[i + 2][0] != "(":
            continue
        close = idx.match.get(i + 2)
        if close is None:
            continue
        arg_ids = [tok for tok, _ in toks[i + 3:close] if is_ident(tok)]
        if not arg_ids:
            continue
        name = arg_ids[-1]  # i.mu -> mu, FaultRegistry::...().mu -> mu
        g = idx.parent[i]
        while g is not None and toks[g][0] != "{":
            g = idx.parent[g]
        if g is None or g not in idx.match:
            continue
        sites.append(LockSite(_lock_id(idx, i, name), idx.path,
                              idx.tline(i), i, (i, idx.match[g])))
    return sites


def _calls_in(idx, lo, hi, defined_names):
    """(callee, line) for name-matched calls inside a token range."""
    toks = idx.toks
    for i in range(lo, hi):
        t = toks[i][0]
        if (t in defined_names and t not in LOCK_RAII
                and i + 1 < len(toks) and toks[i + 1][0] == "("):
            yield t, idx.tline(i)


def check_lockorder(indexes):
    """Cross-file: builds the static lock-acquisition graph and reports
    every cycle with the acquisition chain of each edge."""
    indexes = [idx for idx in indexes if idx.path.startswith("src/")]
    if not indexes:
        return []
    func_defs = {}   # name -> [(idx, Func)]
    for idx in indexes:
        for fn in idx.functions:
            func_defs.setdefault(fn.name, []).append((idx, fn))
    defined_names = set(func_defs)

    all_sites = {}   # idx.path -> [LockSite]
    for idx in indexes:
        all_sites[idx.path] = _lock_sites(idx)

    # Locks each function acquires, directly or through calls (fixpoint,
    # chains capped at LOCK_CHAIN_CAP hops). trans[name] = {lock: chain}.
    trans = {name: {} for name in func_defs}
    direct = {name: {} for name in func_defs}
    for idx in indexes:
        for site in all_sites[idx.path]:
            fn = idx.enclosing_function(site.tok)
            if fn is None:
                continue
            direct[fn.name].setdefault(
                site.lock, f"{site.lock} acquired at {site.path}:{site.line}")
    for name in func_defs:
        trans[name].update(direct[name])
    for _ in range(LOCK_CHAIN_CAP):
        changed = False
        for name, defs in func_defs.items():
            for idx, fn in defs:
                for callee, line in _calls_in(idx, fn.body[0], fn.body[1],
                                              defined_names):
                    if callee == name:
                        continue
                    for lock, chain in trans.get(callee, {}).items():
                        if lock not in trans[name]:
                            trans[name][lock] = (
                                f"{name}() calls {callee}() at "
                                f"{idx.path}:{line} -> {chain}")
                            changed = True
        if not changed:
            break

    # Edges: A -> B when B is acquired (directly or transitively through a
    # call) while A's RAII guard is live; plus LIGHTNE_REQUIRES(A) on a
    # function that acquires B (callers hold A when B is taken).
    edges = {}  # (a, b) -> (witness, path, line)
    def add_edge(a, b, witness, path, line):
        if (a, b) not in edges:
            edges[(a, b)] = (witness, path, line)

    for idx in indexes:
        sites = all_sites[idx.path]
        for site in sites:
            lo, hi = site.scope
            held = f"{site.lock} held from {site.path}:{site.line}"
            for other in sites:
                if other.tok > site.tok and lo < other.tok < hi:
                    add_edge(site.lock, other.lock,
                             f"{held}; {other.lock} acquired at "
                             f"{other.path}:{other.line}",
                             site.path, site.line)
            for callee, line in _calls_in(idx, site.tok, hi, defined_names):
                for lock, chain in trans.get(callee, {}).items():
                    if lock == site.lock:
                        continue
                    add_edge(site.lock, lock,
                             f"{held}; {callee}() called at "
                             f"{idx.path}:{line} -> {chain}",
                             site.path, site.line)
        for fn in idx.functions:
            if not fn.requires_:
                continue
            for req in fn.requires_:
                a = f"{idx.path}::{req}"
                for lock, chain in trans.get(fn.name, {}).items():
                    if lock == a:
                        continue
                    add_edge(a, lock,
                             f"{a} required held by {fn.name}() "
                             f"({idx.path}:{fn.line}); {chain}",
                             idx.path, fn.line)

    # Cycle detection: every strongly connected component with >= 2 locks
    # (or a self-loop) is a potential deadlock.
    adj = {}
    for (a, b) in edges:
        adj.setdefault(a, set()).add(b)
        adj.setdefault(b, set())
    findings = []
    for comp in _sccs(adj):
        if len(comp) == 1:
            a = next(iter(comp))
            if a in adj.get(a, ()):
                w, path, line = edges[(a, a)]
                findings.append(Finding(
                    path, line, "lockorder",
                    f"lock {a} may be re-acquired while already held "
                    f"(self-deadlock): {w}"))
            continue
        cycle = _cycle_in(comp, adj)
        chains = []
        for a, b in zip(cycle, cycle[1:] + cycle[:1]):
            w, _, _ = edges[(a, b)]
            chains.append(f"[{a} -> {b}] {w}")
        _, path, line = edges[(cycle[0], cycle[1])]
        findings.append(Finding(
            path, line, "lockorder",
            "lock-order cycle (potential deadlock) between "
            + " and ".join(sorted(comp)) + ": " + "; ".join(chains)))
    return findings


def _sccs(adj):
    """Tarjan strongly-connected components (iterative)."""
    index = {}
    low = {}
    on_stack = set()
    stack = []
    comps = []
    counter = [0]
    for root in sorted(adj):
        if root in index:
            continue
        work = [(root, iter(sorted(adj[root])))]
        index[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            v, it = work[-1]
            advanced = False
            for w in it:
                if w not in index:
                    index[w] = low[w] = counter[0]
                    counter[0] += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(adj[w]))))
                    advanced = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            work.pop()
            if work:
                u = work[-1][0]
                low[u] = min(low[u], low[v])
            if low[v] == index[v]:
                comp = set()
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.add(w)
                    if w == v:
                        break
                comps.append(comp)
    return comps


def _cycle_in(comp, adj):
    """A simple cycle through the nodes of one SCC (node list, in order)."""
    start = min(comp)
    path = [start]
    seen = {start}
    v = start
    while True:
        nxts = [w for w in sorted(adj.get(v, ())) if w in comp]
        back = [w for w in nxts if w == start]
        if back and len(path) > 1:
            return path
        unvisited = [w for w in nxts if w not in seen]
        if not unvisited:
            return path  # defensive; an SCC always closes the loop
        v = unvisited[0]
        seen.add(v)
        path.append(v)


# --------------------------------------------------------------------------
# ptrhash
HASH_FN_RE = re.compile(r"(?:\w*Hash\w*|SplitMix64)\Z")
PTR_ORDER_TEMPLATES = frozenset(("hash", "less", "greater"))
PTR_KEY_CONTAINERS = frozenset(("map", "set", "multimap", "multiset"))
RELATIONAL = frozenset(("<", ">", "<=", ">="))


def _template_group(idx, i):
    """Token index just past the '>' closing the template list opened by
    the '<' at i, or None ('>>' counts as two closers)."""
    depth = 0
    toks = idx.toks
    for j in range(i, len(toks)):
        t = toks[j][0]
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return j + 1
        elif t == ">>":
            depth -= 2
            if depth <= 0:
                return j + 1
        elif t in (";", "{", "}"):
            return None
    return None


def check_ptrhash(idx):
    toks = idx.toks
    n = len(toks)
    for i, (t, off) in enumerate(toks):
        # std::hash<T*> / std::less<T*> / std::greater<T*>
        if (t in PTR_ORDER_TEMPLATES and i >= 2
                and toks[i - 1][0] == "::" and toks[i - 2][0] == "std"
                and i + 1 < n and toks[i + 1][0] == "<"):
            end = _template_group(idx, i + 1)
            if end and any(tok == "*" for tok, _ in toks[i + 2:end - 1]):
                yield anchored(
                    idx.path, "ptrhash",
                    f"std::{t} over a pointer type orders/hashes by "
                    "address, which differs run to run; key by a stable id "
                    "(NodeId, name, index) instead", idx.text, off)
        # std::map<K*, ...> / std::set<K*>: pointer in the first (key)
        # template argument.
        if (t in PTR_KEY_CONTAINERS and i >= 2
                and toks[i - 1][0] == "::" and toks[i - 2][0] == "std"
                and i + 1 < n and toks[i + 1][0] == "<"):
            end = _template_group(idx, i + 1)
            if end:
                key_toks = []
                for j in range(i + 2, end - 1):
                    if toks[j][0] == "," and _at_template_top(toks, i + 1, j):
                        break
                    key_toks.append(toks[j][0])
                if "*" in key_toks:
                    yield anchored(
                        idx.path, "ptrhash",
                        f"std::{t} keyed by a pointer iterates in address "
                        "order, which differs run to run; key by a stable "
                        "id instead", idx.text, off)
        # reinterpret_cast inside a *Hash*/SplitMix64 argument list.
        if (HASH_FN_RE.match(t) and i + 1 < n and toks[i + 1][0] == "("
                and (i + 1) in idx.match):
            close = idx.match[i + 1]
            for j in range(i + 2, close):
                if toks[j][0] == "reinterpret_cast":
                    yield anchored(
                        idx.path, "ptrhash",
                        f"pointer bits (reinterpret_cast) fed to {t}() "
                        "hash addresses, which differ run to run; hash a "
                        "stable id instead", idx.text, toks[j][1])
                    break
        # Relational comparison of a reinterpret_cast result.
        if t == "reinterpret_cast" and i + 1 < n and toks[i + 1][0] == "<":
            end = _template_group(idx, i + 1)
            if (end and end < n and toks[end][0] == "("
                    and end in idx.match):
                after = idx.match[end] + 1
                prev = toks[i - 1][0] if i > 0 else ""
                if (after < n and toks[after][0] in RELATIONAL) \
                        or prev in RELATIONAL:
                    yield anchored(
                        idx.path, "ptrhash",
                        "relational comparison of reinterpret_cast results "
                        "orders by address, which differs run to run; "
                        "compare stable ids instead", idx.text, off)


def _at_template_top(toks, open_i, j):
    """True if token j sits at depth 1 of the template list opened at
    open_i (i.e. a top-level ',' separating template arguments)."""
    depth = 0
    for k in range(open_i, j):
        t = toks[k][0]
        if t in ("<", "(", "["):
            depth += 1
        elif t in (">", ")", "]"):
            depth -= 1
        elif t == ">>":
            depth -= 2
    return depth == 1


# --------------------------------------------------------------------------
# suppression hygiene
SUPPRESSIBLE = frozenset(RULES) - {"suppression"}


def check_suppressions(f, raw_findings):
    """Validates every `lint-ok:` comment in f against the raw (pre-
    suppression) findings: unknown rule names, missing justifications, and
    suppressions whose rule no longer fires on their line are all errors.
    These findings are themselves unsuppressible — the hygiene rule is the
    one thing a suppression comment cannot wave away."""
    fired = set()
    for x in raw_findings:
        fired.add((x.line, x.rule))
        if x.match_line is not None:
            fired.add((x.match_line, x.rule))
    for lineno, rule, rest in f.suppress_sites:
        if rule not in SUPPRESSIBLE:
            yield Finding(
                f.rel_path, lineno, "suppression",
                f"'lint-ok: {rule}' names no suppressible rule (rules: "
                + ", ".join(sorted(SUPPRESSIBLE)) + ")")
            continue
        if not JUSTIFICATION_RE.search(rest):
            yield Finding(
                f.rel_path, lineno, "suppression",
                f"suppression of '{rule}' has no justification; write why "
                "the finding is intentional, e.g. "
                f"`lint-ok: {rule} (reason)`")
        if (lineno, rule) not in fired:
            yield Finding(
                f.rel_path, lineno, "suppression",
                f"stale suppression: no '{rule}' finding fires on this "
                "line any more — delete the lint-ok comment")


# --------------------------------------------------------------------------
# Fixture trees under tools/lint/testdata/{bad,good}/ are miniature repos:
# lint them as if rooted at their own top, so path-scoped rules (unordered,
# layering, exemptions) apply to a fixture invoked directly by path.
TESTDATA_RE = re.compile(r"(?:^|/)testdata/(?:bad|good)/(.+)$")


def rule_path(rel):
    m = TESTDATA_RE.search(rel)
    return m.group(1) if m else rel


def discover(root, paths=None):
    """Yields repo-relative paths of lintable files under root."""
    rels = []
    if paths:
        for p in paths:
            ap = os.path.abspath(p)
            if os.path.isdir(ap):
                for dirpath, dirnames, filenames in os.walk(ap):
                    dirnames[:] = sorted(
                        d for d in dirnames if not d.startswith("."))
                    for name in sorted(filenames):
                        rels.append(
                            os.path.relpath(os.path.join(dirpath, name),
                                            root))
            else:
                rels.append(os.path.relpath(ap, root))
    else:
        for top in DEFAULT_ROOTS:
            ap = os.path.join(root, top)
            if os.path.isdir(ap):
                rels.extend(discover_dir(root, ap))
        rels.append("CMakeLists.txt")
    seen = set()
    for rel in rels:
        rel = rel.replace(os.sep, "/")
        if rel in seen:
            continue
        seen.add(rel)
        if is_cpp(rel) or is_cmake(rel):
            yield rel


def discover_dir(root, ap):
    for dirpath, dirnames, filenames in os.walk(ap):
        dirnames[:] = sorted(d for d in dirnames if not d.startswith("."))
        for name in sorted(filenames):
            yield os.path.relpath(os.path.join(dirpath, name), root)


def load_files(root, rel_paths):
    files = []
    for rel in rel_paths:
        full = os.path.join(root, rel)
        if not os.path.isfile(full):
            continue
        try:
            with open(full, encoding="utf-8", errors="replace") as fh:
                files.append(SourceFile(rule_path(rel), fh.read()))
        except OSError as e:
            print(f"lightne_lint: cannot read {rel}: {e}", file=sys.stderr)
    return files


def lint_files(files):
    """Runs every rule over the loaded files; returns unsuppressed findings
    plus the suppression-hygiene findings derived from the raw set."""
    status_names = collect_status_names(files)
    indexes = {}
    for f in files:
        if is_cpp(f.rel_path):
            indexes[f.rel_path] = FileIndex(f)
    raw = {f.rel_path: [] for f in files}
    for f in files:
        for gen in (check_random(f), check_fastmath(f), check_unordered(f),
                    check_status(f, status_names), check_layering(f),
                    check_rawmutex(f), check_timer(f), check_atomicio(f)):
            raw[f.rel_path].extend(gen)
        idx = indexes.get(f.rel_path)
        if idx is not None:
            raw[f.rel_path].extend(check_parfloat(idx))
            raw[f.rel_path].extend(check_rngflow(idx))
            raw[f.rel_path].extend(check_ptrhash(idx))
    for finding in check_lockorder(list(indexes.values())):
        raw.setdefault(finding.path, []).append(finding)
    findings = []
    for f in files:
        file_raw = raw.get(f.rel_path, [])
        findings.extend(x for x in file_raw if not f.suppresses_finding(x))
        findings.extend(check_suppressions(f, file_raw))
    findings.sort(key=lambda x: (x.path, x.line, x.rule))
    return findings


def scan_repo(root, paths=None):
    return lint_files(load_files(root, discover(root, paths)))


def repo_root():
    return os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def write_report(path, findings, files_scanned):
    by_rule = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    doc = {
        "schema": "lightne-lint-v1",
        "total": len(findings),
        "files_scanned": files_scanned,
        "by_rule": dict(sorted(by_rule.items())),
        "findings": [{"path": f.path, "line": f.line, "rule": f.rule,
                      "match_line": f.match_line, "message": f.message}
                     for f in findings],
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")


def main(argv):
    args = argv[1:]
    if args and args[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    report_path = None
    if "--report" in args:
        i = args.index("--report")
        if i + 1 >= len(args):
            print("lightne_lint: --report needs a path", file=sys.stderr)
            return 2
        report_path = args[i + 1]
        del args[i:i + 2]
    if args and args[0].startswith("-"):
        print(f"lightne_lint: unknown option {args[0]}", file=sys.stderr)
        return 2
    root = repo_root()
    files = load_files(root, discover(root, args or None))
    findings = lint_files(files)
    for f in findings:
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
    if report_path:
        write_report(report_path, findings, len(files))
    if findings:
        print(f"lightne_lint: {len(findings)} finding(s) across "
              f"{len({f.path for f in findings})} file(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
