#!/usr/bin/env python3
"""LightNE repo-invariant linter (stdlib only).

Mechanically enforces the invariants that neither the compiler nor the test
suite can guarantee — see DESIGN.md §9 ("Static-analysis contract"):

  random     The determinism contract bans ambient randomness: no rand()/
             std::rand/srand, no std::random_device, no std::mt19937, and no
             time()-seeded anything outside src/util/random.h. All
             randomness flows through the counter-seedable Rng so results
             are a pure function of (seed, work item).
  fastmath   No -ffast-math-style flags or optimize pragmas anywhere
             (sources or CMake): value-changing FP transforms would break
             the bit-identical kernel contract of DESIGN.md §8.
  unordered  src/core, src/la, src/graph may not use std::unordered_{map,
             set,multimap,multiset}: their iteration order is unspecified,
             so any result-affecting traversal becomes nondeterministic.
             Use std::map, sorted vectors, or the ConcurrentHashTable
             (whose Extract() feeds a deterministic sort).
  status     Every call to a Status/Result<T>-returning function must be
             consumed (assigned, returned, tested, or explicitly cast to
             (void)). Bare-statement drops lose the error path. This is the
             textual twin of the [[nodiscard]] markings in util/status.h.
  layering   Include hygiene: a module may include only itself and the
             layers below it (util -> parallel -> {graph, la} -> data ->
             core -> {baselines, eval}). In particular src/la may not
             include src/core.
  rawmutex   No raw std::mutex/std::shared_mutex/std::condition_variable
             (or their lock RAII types) outside src/util/
             thread_annotations.h: all locks must be the annotated wrappers
             so Clang's -Wthread-safety sees every acquisition.
  timer      No raw std::chrono clocks (steady_clock/system_clock/
             high_resolution_clock) outside src/util/timer.h and
             src/util/trace.h: all timing goes through Timer/StageTimer/
             TraceSpan so bench numbers and pipeline traces share one
             monotonic clock (DESIGN.md §10).
  atomicio   No direct file writes (std::ofstream/std::fstream, or fopen
             in a w/a/+ mode) in src/, bench/ or examples/ outside
             src/util/artifact_io.cc: every persisted file goes through
             AtomicFileWriter's write-tmp -> fsync -> rename so a crash or
             disk-full never leaves a torn artifact (DESIGN.md §12).
             Read-only fopen("rb") is fine; tests/ is out of scope (test
             fixtures deliberately write torn files).

Suppression: append a comment containing `lint-ok: <rule>` to the offending
line (with a justification). Example:

    std::time(nullptr));  // lint-ok: random (timestamp, not an RNG seed)

Usage:
    tools/lint/lightne_lint.py              # lint src/ tests/ bench/ examples/
    tools/lint/lightne_lint.py PATH...      # lint specific files/dirs
Exit status: 0 clean, 1 findings, 2 usage error.
"""

import os
import re
import sys
from collections import namedtuple

Finding = namedtuple("Finding", ["path", "line", "rule", "message"])

RULES = ("random", "fastmath", "unordered", "status", "layering", "rawmutex",
         "timer", "atomicio")

CPP_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp", ".cxx")
DEFAULT_ROOTS = ("src", "tests", "bench", "examples")

# Files exempt from specific rules (the one place each primitive may live).
RANDOM_EXEMPT = ("src/util/random.h",)
RAWMUTEX_EXEMPT = ("src/util/thread_annotations.h",)
TIMER_EXEMPT = ("src/util/timer.h", "src/util/trace.h")
# Factory names declared in status.h (Status::Ok etc.) are never collected
# as "Status-returning functions" for the status rule: flagging a bare
# `Ok();` would be noise, and the real declarations live everywhere else.
STATUS_COLLECT_SKIP = ("src/util/status.h",)

# Module layering: each src/<dir> may include only the listed src/<dir>s.
LAYERING = {
    "util": {"util"},
    "parallel": {"util", "parallel"},
    "graph": {"util", "parallel", "graph"},
    "la": {"util", "parallel", "la"},
    "data": {"util", "parallel", "graph", "data"},
    "core": {"util", "parallel", "graph", "data", "la", "core"},
    "baselines": {"util", "parallel", "graph", "data", "la", "core",
                  "baselines"},
    "eval": {"util", "parallel", "graph", "data", "la", "eval"},
}

SUPPRESS_RE = re.compile(r"lint-ok:\s*([a-z]+)")


def is_cmake(rel_path):
    base = os.path.basename(rel_path)
    return base == "CMakeLists.txt" or base.endswith(".cmake")


def is_cpp(rel_path):
    return rel_path.endswith(CPP_EXTENSIONS)


def strip_comments_and_strings(text):
    """Replaces comments and string/char literal *contents* with spaces,
    preserving newlines so line numbers survive."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append('"')
                i += 1
            elif c == "'":
                state = "char"
                out.append("'")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        else:  # string or char
            quote = '"' if state == "string" else "'"
            if c == "\\" and nxt:
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(quote)
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def suppressed_lines(text):
    """Maps 1-based line number -> set of rule names suppressed there."""
    result = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        for rule in SUPPRESS_RE.findall(line):
            result.setdefault(lineno, set()).add(rule)
    return result


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


class SourceFile:
    def __init__(self, rel_path, raw):
        self.rel_path = rel_path
        self.raw = raw
        self.stripped = strip_comments_and_strings(raw) if is_cpp(
            rel_path) else raw
        self.suppressed = suppressed_lines(raw)

    def suppresses(self, lineno, rule):
        return rule in self.suppressed.get(lineno, set())


# --------------------------------------------------------------------------
# random
RANDOM_PATTERNS = (
    (re.compile(r"\bstd::rand\b"), "std::rand"),
    (re.compile(r"(?<!:)\brand\s*\("), "rand()"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937(?:_64)?\b"), "std::mt19937"),
    (re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"),
     "time()-seeded value"),
)


def check_random(f):
    if f.rel_path in RANDOM_EXEMPT or not is_cpp(f.rel_path):
        return
    seen = set()
    for pattern, label in RANDOM_PATTERNS:
        for m in pattern.finditer(f.stripped):
            lineno = line_of(f.stripped, m.start())
            if (lineno, label) in seen:
                continue
            seen.add((lineno, label))
            yield Finding(
                f.rel_path, lineno, "random",
                f"{label} is banned by the determinism contract; derive "
                "randomness from util/random.h (Rng / ItemRng / "
                "HashCombine64)")


# --------------------------------------------------------------------------
# fastmath
FASTMATH_PATTERNS = (
    re.compile(r"-ffast-math\b"),
    re.compile(r"-funsafe-math-optimizations\b"),
    re.compile(r"-fassociative-math\b"),
    re.compile(r"-freciprocal-math\b"),
    re.compile(r"#\s*pragma\s+(?:GCC|clang)\s+optimize\b"),
    re.compile(r"#\s*pragma\s+clang\s+fp\b"),
    re.compile(r"#\s*pragma\s+STDC\s+FP_CONTRACT\s+ON\b"),
)


def check_fastmath(f):
    # CMake files are scanned raw (flags live inside quoted strings);
    # C++ files are scanned with comments/strings stripped.
    text = f.raw if is_cmake(f.rel_path) else f.stripped
    for pattern in FASTMATH_PATTERNS:
        for m in pattern.finditer(text):
            yield Finding(
                f.rel_path, line_of(text, m.start()), "fastmath",
                f"'{m.group(0).strip()}' breaks the bit-identical kernel "
                "contract (DESIGN.md §8); value-changing FP transforms are "
                "banned")


# --------------------------------------------------------------------------
# unordered
UNORDERED_RE = re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\b")
UNORDERED_DIRS = ("src/core/", "src/la/", "src/graph/")


def check_unordered(f):
    if not f.rel_path.startswith(UNORDERED_DIRS) or not is_cpp(f.rel_path):
        return
    for m in UNORDERED_RE.finditer(f.stripped):
        yield Finding(
            f.rel_path, line_of(f.stripped, m.start()), "unordered",
            f"{m.group(0)} has unspecified iteration order; result-affecting "
            "paths must use std::map, sorted vectors, or "
            "ConcurrentHashTable+sort")


# --------------------------------------------------------------------------
# status
STATUS_DECL_RE = re.compile(
    r"(?:^|[;{}]|\n)\s*(?:static\s+|inline\s+|constexpr\s+)*"
    r"(?:Status|Result<[^;{}()=]+>)\s+([A-Za-z_]\w*)\s*\(",
    re.MULTILINE)
# An object/namespace chain like `foo.`, `it->second->`, `lightne::`,
# `FaultRegistry::Global().` — i.e. the call really is the whole statement.
CHAIN_RE = re.compile(
    r"^(?:[A-Za-z_]\w*(?:\(\))?\s*(?:\.|->|::)\s*)*$")


def collect_status_names(files):
    """Names of functions declared to return Status or Result<T>."""
    names = set()
    for f in files:
        if not is_cpp(f.rel_path) or f.rel_path in STATUS_COLLECT_SKIP:
            continue
        for m in STATUS_DECL_RE.finditer(f.stripped):
            names.add(m.group(1))
    return names


def matching_paren(text, open_pos):
    """Position just past the paren group opened at open_pos, or -1."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return -1


def check_status(f, status_names):
    if not is_cpp(f.rel_path) or not status_names:
        return
    text = f.stripped
    for name in status_names:
        for m in re.finditer(r"\b" + re.escape(name) + r"\s*\(", text):
            # Statement start: the last ; { or } before the call chain.
            stmt_start = max(text.rfind(";", 0, m.start()),
                             text.rfind("{", 0, m.start()),
                             text.rfind("}", 0, m.start()))
            prefix = text[stmt_start + 1:m.start()].strip()
            # Preprocessor lines are not statements.
            if "#" in prefix:
                continue
            if not CHAIN_RE.match(prefix):
                continue  # assigned / returned / tested / wrapped — consumed
            close = matching_paren(text, m.end() - 1)
            if close < 0:
                continue
            rest = text[close:close + 2].lstrip()
            if not rest.startswith(";"):
                continue  # member access / operator — the value is used
            yield Finding(
                f.rel_path, line_of(text, m.start()), "status",
                f"return value of {name}() (Status/Result) is dropped; "
                "assign it, LIGHTNE_RETURN_IF_ERROR it, or cast to (void) "
                "with a comment")


# --------------------------------------------------------------------------
# layering
INCLUDE_RE = re.compile(r"#\s*include\s+\"([a-z_]+)/[^\"]+\"")


def check_layering(f):
    if not f.rel_path.startswith("src/") or not is_cpp(f.rel_path):
        return
    parts = f.rel_path.split("/")
    if len(parts) < 3:
        return
    module = parts[1]
    allowed = LAYERING.get(module)
    if allowed is None:
        return
    # Raw text: include paths are string literals, which stripping blanks.
    for m in INCLUDE_RE.finditer(f.raw):
        target = m.group(1)
        if target in LAYERING and target not in allowed:
            yield Finding(
                f.rel_path, line_of(f.raw, m.start()), "layering",
                f"src/{module} may not include src/{target} (dependency "
                "order: util -> parallel -> {graph, la} -> data -> core -> "
                "{baselines, eval})")


# --------------------------------------------------------------------------
# rawmutex
RAWMUTEX_TYPE_RE = re.compile(
    r"\bstd::(?:mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(?:_any)?|"
    r"lock_guard|unique_lock|shared_lock|scoped_lock)\b")
RAWMUTEX_INCLUDE_RE = re.compile(
    r"#\s*include\s+<(?:mutex|shared_mutex|condition_variable)>")


def check_rawmutex(f):
    if f.rel_path in RAWMUTEX_EXEMPT or not is_cpp(f.rel_path):
        return
    for pattern in (RAWMUTEX_TYPE_RE, RAWMUTEX_INCLUDE_RE):
        for m in pattern.finditer(f.stripped):
            yield Finding(
                f.rel_path, line_of(f.stripped, m.start()), "rawmutex",
                f"'{m.group(0)}' bypasses thread-safety analysis; use the "
                "annotated Mutex/SharedMutex/CondVar wrappers from "
                "util/thread_annotations.h")


# --------------------------------------------------------------------------
# timer
TIMER_RE = re.compile(
    r"\bstd::chrono::(?:steady_clock|system_clock|high_resolution_clock)\b")


def check_timer(f):
    if f.rel_path in TIMER_EXEMPT or not is_cpp(f.rel_path):
        return
    for m in TIMER_RE.finditer(f.stripped):
        yield Finding(
            f.rel_path, line_of(f.stripped, m.start()), "timer",
            f"'{m.group(0)}' bypasses the trace-layer clock; time with "
            "Timer/StageTimer (util/timer.h) or TraceSpan (util/trace.h) so "
            "bench numbers and pipeline traces agree")


# --------------------------------------------------------------------------
# atomicio
ATOMICIO_DIRS = ("src/", "bench/", "examples/")
ATOMICIO_EXEMPT = ("src/util/artifact_io.cc",)
ATOMICIO_STREAM_RE = re.compile(r"\bstd::(?:ofstream|fstream)\b")
ATOMICIO_FOPEN_RE = re.compile(r"\bfopen\s*\(")
# A mode literal containing w, a, or + opens the file for writing.
ATOMICIO_WRITE_MODE_RE = re.compile(r'"[rwab+]*[wa+][rwab+]*"\s*\)\s*$')


def check_atomicio(f):
    if (f.rel_path in ATOMICIO_EXEMPT or not is_cpp(f.rel_path)
            or not f.rel_path.startswith(ATOMICIO_DIRS)):
        return
    for m in ATOMICIO_STREAM_RE.finditer(f.stripped):
        yield Finding(
            f.rel_path, line_of(f.stripped, m.start()), "atomicio",
            f"{m.group(0)} writes files directly; persisted files must go "
            "through AtomicFileWriter (util/artifact_io.h) so a crash or "
            "disk-full never leaves a torn artifact")
    for m in ATOMICIO_FOPEN_RE.finditer(f.stripped):
        close = matching_paren(f.stripped, m.end() - 1)
        if close < 0:
            continue
        # strip_comments_and_strings is length-preserving, so the raw text
        # at the same offsets still holds the mode literal it blanked.
        if ATOMICIO_WRITE_MODE_RE.search(f.raw[m.start():close]):
            yield Finding(
                f.rel_path, line_of(f.stripped, m.start()), "atomicio",
                "fopen() in a write mode bypasses atomic "
                "write-tmp -> fsync -> rename; use AtomicFileWriter "
                "(util/artifact_io.h) so a crash never leaves a torn file")


# --------------------------------------------------------------------------
# Fixture trees under tools/lint/testdata/{bad,good}/ are miniature repos:
# lint them as if rooted at their own top, so path-scoped rules (unordered,
# layering, exemptions) apply to a fixture invoked directly by path.
TESTDATA_RE = re.compile(r"(?:^|/)testdata/(?:bad|good)/(.+)$")


def rule_path(rel):
    m = TESTDATA_RE.search(rel)
    return m.group(1) if m else rel


def discover(root, paths=None):
    """Yields repo-relative paths of lintable files under root."""
    rels = []
    if paths:
        for p in paths:
            ap = os.path.abspath(p)
            if os.path.isdir(ap):
                for dirpath, dirnames, filenames in os.walk(ap):
                    dirnames[:] = sorted(
                        d for d in dirnames if not d.startswith("."))
                    for name in sorted(filenames):
                        rels.append(
                            os.path.relpath(os.path.join(dirpath, name),
                                            root))
            else:
                rels.append(os.path.relpath(ap, root))
    else:
        for top in DEFAULT_ROOTS:
            ap = os.path.join(root, top)
            if os.path.isdir(ap):
                rels.extend(discover_dir(root, ap))
        rels.append("CMakeLists.txt")
    seen = set()
    for rel in rels:
        rel = rel.replace(os.sep, "/")
        if rel in seen:
            continue
        seen.add(rel)
        if is_cpp(rel) or is_cmake(rel):
            yield rel


def discover_dir(root, ap):
    for dirpath, dirnames, filenames in os.walk(ap):
        dirnames[:] = sorted(d for d in dirnames if not d.startswith("."))
        for name in sorted(filenames):
            yield os.path.relpath(os.path.join(dirpath, name), root)


def load_files(root, rel_paths):
    files = []
    for rel in rel_paths:
        full = os.path.join(root, rel)
        if not os.path.isfile(full):
            continue
        try:
            with open(full, encoding="utf-8", errors="replace") as fh:
                files.append(SourceFile(rule_path(rel), fh.read()))
        except OSError as e:
            print(f"lightne_lint: cannot read {rel}: {e}", file=sys.stderr)
    return files


def lint_files(files):
    """Runs every rule over the loaded files; returns unsuppressed findings."""
    status_names = collect_status_names(files)
    findings = []
    for f in files:
        for gen in (check_random(f), check_fastmath(f), check_unordered(f),
                    check_status(f, status_names), check_layering(f),
                    check_rawmutex(f), check_timer(f), check_atomicio(f)):
            for finding in gen:
                if not f.suppresses(finding.line, finding.rule):
                    findings.append(finding)
    findings.sort(key=lambda x: (x.path, x.line, x.rule))
    return findings


def scan_repo(root, paths=None):
    return lint_files(load_files(root, discover(root, paths)))


def repo_root():
    return os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def main(argv):
    args = argv[1:]
    if args and args[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    if args and args[0].startswith("-"):
        print(f"lightne_lint: unknown option {args[0]}", file=sys.stderr)
        return 2
    root = repo_root()
    findings = scan_repo(root, args or None)
    for f in findings:
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
    if findings:
        print(f"lightne_lint: {len(findings)} finding(s) across "
              f"{len({f.path for f in findings})} file(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
